package bench

import (
	"fmt"

	"dangsan/internal/detectors"
	"dangsan/internal/detectors/camp"
	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/detectors/xtag"
	"dangsan/internal/faultinject"
	"dangsan/internal/obs"
	"dangsan/internal/pointerlog"
	"dangsan/internal/proc"
	"dangsan/internal/workloads"
)

// Options scale and seed an experiment run.
type Options struct {
	// Scale multiplies workload sizes (1.0 = the calibrated defaults; use
	// ~0.1 for smoke runs).
	Scale float64
	// Seed makes runs deterministic.
	Seed int64
	// Kinds selects the detectors to compare; nil means all four.
	Kinds []Kind
	// Repeat runs each measurement this many times and keeps the fastest
	// (default 1; use 3 on noisy machines).
	Repeat int
	// Metrics, when non-nil, is attached to every measured process;
	// counters accumulate across runs.
	Metrics *obs.Registry
	// Audit enables DangSan's log-byte accounting cross-check on every
	// DangSan detector the run builds.
	Audit bool
	// FaultRate arms every fault-injection site at this probability for
	// each measured run (0 disables injection entirely). Each run gets a
	// fresh plane so draws are deterministic per run, shared between the
	// allocator and the detector.
	FaultRate float64
	// FaultSeed seeds the fault plane (0: reuse Seed).
	FaultSeed int64
	// FaultBudget bounds injections per site per run so pressure stays
	// transient (0: the default 256; negative: unlimited).
	FaultBudget int64
	// MaxMetadataBytes caps the detector's metadata footprint (DangSan's
	// pointer log; xtag/camp object tracking); objects allocated past the
	// cap go untracked (degraded mode) instead of growing metadata without
	// bound. 0 means unlimited.
	MaxMetadataBytes uint64
	// HeapBytes shrinks each measured process's simulated heap (0: the
	// full 64 GiB layout) so allocator pressure is reachable.
	HeapBytes uint64
	// QuarantineBytes arms DangSan's epoch-based free quarantine with this
	// byte budget: frees defer into epoch batches instead of invalidating
	// inline. 0 keeps the inline free path.
	QuarantineBytes uint64
	// QuarantineEpoch sets the drain batch width (0: the pointerlog
	// default when quarantine is armed).
	QuarantineEpoch int
	// QuarantineSync drains epochs on the freeing thread instead of a
	// background worker (deterministic mode, used with Audit).
	QuarantineSync bool
	// ColdSpillBytes arms DangSan's tiered pointer logs: hash-mode
	// location sets past this many resident bytes spill older entries to
	// disk segments. 0 keeps every log fully resident.
	ColdSpillBytes uint64
}

// NewPlane builds one run's fault-injection plane; nil when injection is
// off. Every measured run gets its own plane so the draw sequence — and
// therefore the failure pattern — is identical across repeats.
func (o Options) NewPlane() *faultinject.Plane {
	if o.FaultRate <= 0 {
		return nil
	}
	seed := o.FaultSeed
	if seed == 0 {
		seed = o.Seed
	}
	budget := o.FaultBudget
	if budget == 0 {
		budget = 256
	}
	p := faultinject.New(seed)
	p.EnableAll(o.FaultRate, budget)
	return p
}

// NewDetector builds a detector of the given kind honoring the options:
// DangSan detectors get audit mode, the metadata budget, the fault plane,
// and the metrics registry wired in; the checked-dereference backends get
// the metadata budget and the fault plane. plane may be nil.
func (o Options) NewDetector(kind Kind, plane *faultinject.Plane) (detectors.Detector, error) {
	if kind == XTag && (plane != nil || o.MaxMetadataBytes > 0) {
		return xtag.NewWithOptions(xtag.Options{MaxMetadataBytes: o.MaxMetadataBytes, Faults: plane}), nil
	}
	if kind == CAMP && (plane != nil || o.MaxMetadataBytes > 0) {
		return camp.NewWithOptions(camp.Options{MaxMetadataBytes: o.MaxMetadataBytes, Faults: plane}), nil
	}
	if kind == DangSan && (o.Audit || o.Metrics != nil || plane != nil || o.MaxMetadataBytes > 0 || o.QuarantineBytes > 0 || o.ColdSpillBytes > 0) {
		cfg := pointerlog.DefaultConfig()
		cfg.MaxMetadataBytes = o.MaxMetadataBytes
		cfg.QuarantineBytes = o.QuarantineBytes
		cfg.QuarantineEpoch = o.QuarantineEpoch
		cfg.QuarantineSync = o.QuarantineSync
		cfg.ColdSpillBytes = o.ColdSpillBytes
		return dangsan.NewWithOptions(dangsan.Options{
			Config:  cfg,
			Audit:   o.Audit,
			Metrics: o.Metrics,
			Faults:  plane,
		}), nil
	}
	return NewDetector(kind)
}

func (o Options) normalized() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if len(o.Kinds) == 0 {
		o.Kinds = AllKinds()
	}
	if o.Repeat < 1 {
		o.Repeat = 1
	}
	return o
}

func scaleSpec(p workloads.SPECProfile, s float64) workloads.SPECProfile {
	if s == 1 {
		return p
	}
	p.Objects = maxi(int(float64(p.Objects)*s), 16)
	p.TotalStores = maxi(int(float64(p.TotalStores)*s), 8)
	p.ComputeOps = maxi(int(float64(p.ComputeOps)*s), 8)
	p.LiveWindow = maxi(int(float64(p.LiveWindow)*s), 8)
	return p
}

func scaleParallel(p workloads.ParallelProfile, s float64) workloads.ParallelProfile {
	if s == 1 {
		return p
	}
	p.TotalObjects = maxi(int(float64(p.TotalObjects)*s), 64)
	p.TotalStores = maxi(int(float64(p.TotalStores)*s), 64)
	p.TotalCompute = maxi(int(float64(p.TotalCompute)*s), 64)
	p.LeakPerThread = int(float64(p.LeakPerThread) * s)
	p.LiveWindowPerThread = maxi(int(float64(p.LiveWindowPerThread)*s), 8)
	return p
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SPECRow is one benchmark's measurements across detectors (Figures 9+11
// and Table 1 share the runs).
type SPECRow struct {
	Benchmark string
	ByKind    map[Kind]Measurement
}

// RunSPEC executes the SPEC analogs under every selected detector.
// FreeSentry runs too: these benchmarks are single-threaded, the only
// configuration the real FreeSentry supports.
func RunSPEC(opts Options, progress func(string)) ([]SPECRow, error) {
	opts = opts.normalized()
	var rows []SPECRow
	for _, prof := range workloads.SPECProfiles() {
		prof := scaleSpec(prof, opts.Scale)
		row := SPECRow{Benchmark: prof.Name, ByKind: make(map[Kind]Measurement)}
		for _, kind := range opts.Kinds {
			if progress != nil {
				progress(fmt.Sprintf("%s / %s", prof.Name, kind))
			}
			kind := kind
			m, err := MeasureN(opts,
				func(pl *faultinject.Plane) (detectors.Detector, error) { return opts.NewDetector(kind, pl) },
				func(p *proc.Process) error { return workloads.RunSPEC(p, prof, opts.Seed) })
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", prof.Name, kind, err)
			}
			row.ByKind[kind] = m
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ScalabilityCell is one (benchmark, threads) measurement pair.
type ScalabilityCell struct {
	Threads int
	ByKind  map[Kind]Measurement
}

// ScalabilityRow is one parallel benchmark's thread sweep.
type ScalabilityRow struct {
	Benchmark string
	Cells     []ScalabilityCell
}

// DefaultThreadCounts mirrors the paper's 1..64 sweep.
func DefaultThreadCounts() []int { return []int{1, 2, 4, 8, 16, 32, 64} }

// RunScalability executes the PARSEC/SPLASH-2X analogs across thread
// counts (Figures 10 and 12). FreeSentry is only run at one thread — its
// data structures are not thread-safe, exactly as in the paper.
func RunScalability(threadCounts []int, opts Options, progress func(string)) ([]ScalabilityRow, error) {
	opts = opts.normalized()
	if len(threadCounts) == 0 {
		threadCounts = DefaultThreadCounts()
	}
	var rows []ScalabilityRow
	for _, prof := range workloads.ParallelProfiles() {
		prof := scaleParallel(prof, opts.Scale)
		row := ScalabilityRow{Benchmark: prof.Name}
		for _, threads := range threadCounts {
			cell := ScalabilityCell{Threads: threads, ByKind: make(map[Kind]Measurement)}
			for _, kind := range opts.Kinds {
				if kind == FreeSentry && threads > 1 {
					continue // thread-unsafe by design
				}
				if progress != nil {
					progress(fmt.Sprintf("%s / %d threads / %s", prof.Name, threads, kind))
				}
				kind := kind
				m, err := MeasureN(opts,
					func(pl *faultinject.Plane) (detectors.Detector, error) { return opts.NewDetector(kind, pl) },
					func(p *proc.Process) error { return workloads.RunParallel(p, prof, threads, opts.Seed) })
				if err != nil {
					return nil, fmt.Errorf("%s/%d/%s: %w", prof.Name, threads, kind, err)
				}
				cell.ByKind[kind] = m
			}
			row.Cells = append(row.Cells, cell)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ServerRow is one server's measurements.
type ServerRow struct {
	Server   string
	Requests int
	ByKind   map[Kind]Measurement
}

// RunServers executes the web-server analogs (§8.2/§8.3) with the paper's
// 32 workers.
func RunServers(opts Options, progress func(string)) ([]ServerRow, error) {
	opts = opts.normalized()
	requests := maxi(int(20000*opts.Scale), 500)
	const workers = 32
	var rows []ServerRow
	for _, prof := range workloads.ServerProfiles() {
		row := ServerRow{Server: prof.Name, Requests: requests, ByKind: make(map[Kind]Measurement)}
		for _, kind := range opts.Kinds {
			if kind == FreeSentry {
				continue // servers are multithreaded; FreeSentry cannot run them
			}
			if progress != nil {
				progress(fmt.Sprintf("server %s / %s", prof.Name, kind))
			}
			kind := kind
			m, err := MeasureN(opts,
				func(pl *faultinject.Plane) (detectors.Detector, error) { return opts.NewDetector(kind, pl) },
				func(p *proc.Process) error { return workloads.RunServer(p, prof, workers, requests, opts.Seed) })
			if err != nil {
				return nil, fmt.Errorf("server %s/%s: %w", prof.Name, kind, err)
			}
			row.ByKind[kind] = m
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table1Row mirrors the columns of the paper's Table 1: DangSan's counters
// plus the DangNULL comparison columns.
type Table1Row struct {
	Benchmark string
	DangSan   pointerlog.Snapshot
	// DangNULL coverage comparison.
	DangNULLPtrs  uint64
	DangNULLInval uint64
}

// RunTable1 gathers the statistics table.
func RunTable1(opts Options, progress func(string)) ([]Table1Row, error) {
	opts = opts.normalized()
	var rows []Table1Row
	for _, prof := range workloads.SPECProfiles() {
		prof := scaleSpec(prof, opts.Scale)
		if progress != nil {
			progress(prof.Name)
		}
		// Table 1 is the statistics table; it always runs injection-free so
		// the counters describe the design, not the chaos configuration.
		ds, err := opts.NewDetector(DangSan, nil)
		if err != nil {
			return nil, err
		}
		m, err := MeasureWith(ds, func(p *proc.Process) error {
			return workloads.RunSPEC(p, prof, opts.Seed)
		}, opts.Metrics)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", prof.Name, err)
		}
		dnDet, err := NewDetector(DangNULL)
		if err != nil {
			return nil, err
		}
		if _, err := Measure(dnDet, func(p *proc.Process) error {
			return workloads.RunSPEC(p, prof, opts.Seed)
		}); err != nil {
			return nil, fmt.Errorf("%s dangnull: %w", prof.Name, err)
		}
		reg, inv := dnDet.(interface {
			Stats() (uint64, uint64)
		}).Stats()
		rows = append(rows, Table1Row{
			Benchmark:     prof.Name,
			DangSan:       m.Stats,
			DangNULLPtrs:  reg,
			DangNULLInval: inv,
		})
	}
	return rows, nil
}
