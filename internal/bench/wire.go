package bench

import (
	"fmt"
	"os"
	"time"

	"dangsan/internal/pointerlog"
	"dangsan/internal/service"
)

// WireThroughputRow is one transport point of the wire experiment: the
// same shard count and client population driven through in-process
// channels, unix-socket worker processes, and loopback-TCP worker
// processes, so the column-to-column delta is the IPC tax alone.
type WireThroughputRow struct {
	Transport  string  `json:"transport"`
	Shards     int     `json:"shards"`
	Clients    int     `json:"clients"`
	Requests   uint64  `json:"requests"`
	Seconds    float64 `json:"seconds"`
	Throughput float64 `json:"ops_per_sec"`
	Degraded   uint64  `json:"degraded"`
	Detected   uint64  `json:"detected"`
}

// WireFailoverRow is one transport's process-death recovery measurement:
// workers SIGKILLed under live load (a real signal for wire transports,
// the in-process analog for chan), recovery spanning respawn + cold-
// segment read + journal replay + audit re-check on the rebuilt worker.
type WireFailoverRow struct {
	Transport      string  `json:"transport"`
	SigKills       int     `json:"sigkills"`
	Failovers      uint64  `json:"failovers"`
	RecoveryMeanMs float64 `json:"recovery_mean_ms"`
	RecoveryMaxMs  float64 `json:"recovery_max_ms"`
	Issued         uint64  `json:"issued"`
	Degraded       uint64  `json:"degraded"`
	Replayed       uint64  `json:"replayed_objects"`
	RecoveredLocs  uint64  `json:"recovered_spilled_locs"`
}

// WireReport bundles the wire-transport experiments for BENCH_10.json.
type WireReport struct {
	Throughput []WireThroughputRow `json:"throughput"`
	Failover   []WireFailoverRow   `json:"failover"`
}

// wireTransports is the comparison axis, in-process baseline first.
func wireTransports() []string {
	return []string{service.TransportChan, service.TransportUnix, service.TransportTCP}
}

// wireServiceConfig is the shared service shape for the wire experiments:
// audited, cold tier at the minimum spill threshold, and timings padded
// enough that process exec/scheduling noise never masquerades as a
// disruption.
func wireServiceConfig(opts Options, shards int, dir string) service.Config {
	return service.Config{
		Shards:            shards,
		HeapBytes:         opts.HeapBytes,
		Audit:             true,
		ColdSpillBytes:    pointerlog.MinColdSpillBytes,
		ColdDir:           dir,
		WorkDir:           dir,
		Seed:              uint64(opts.Seed),
		RequestTimeout:    250 * time.Millisecond,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  50 * time.Millisecond,
	}
}

// RunWire runs the transport comparison: a fixed-shape load through each
// transport for the ops/s columns, then a SIGKILL failover sweep on each
// measuring process-death recovery latency. Any invariant violation —
// false UAF, untyped error, audit drift across a respawn — is an error.
func RunWire(opts Options, progress func(string)) (*WireReport, error) {
	opts = opts.normalized()
	rep := &WireReport{}
	const shards = 4
	clients := 8
	perClient := maxi(int(1000*opts.Scale), 100)

	for _, tr := range wireTransports() {
		if progress != nil {
			progress(fmt.Sprintf("wire throughput transport=%s", tr))
		}
		row, err := runWireThroughput(opts, tr, shards, clients, perClient)
		if err != nil {
			return nil, err
		}
		rep.Throughput = append(rep.Throughput, row)
	}
	for _, tr := range wireTransports() {
		if progress != nil {
			progress(fmt.Sprintf("wire failover transport=%s", tr))
		}
		row, err := runWireFailover(opts, tr, shards, clients)
		if err != nil {
			return nil, err
		}
		rep.Failover = append(rep.Failover, row)
	}
	return rep, nil
}

func runWireThroughput(opts Options, transport string, shards, clients, perClient int) (WireThroughputRow, error) {
	row := WireThroughputRow{Transport: transport, Shards: shards, Clients: clients}
	dir, err := os.MkdirTemp("", "dangsan-bench-wire")
	if err != nil {
		return row, fmt.Errorf("wire %s: %w", transport, err)
	}
	defer os.RemoveAll(dir)
	cfg := wireServiceConfig(opts, shards, dir)
	cfg.Transport = transport
	svc, err := service.New(cfg)
	if err != nil {
		return row, fmt.Errorf("wire %s: %w", transport, err)
	}
	start := time.Now()
	load := service.RunLoad(svc, service.LoadConfig{
		Clients:  clients,
		Requests: perClient,
		Seed:     uint64(opts.Seed)*0x9e3779b9 + 7,
	})
	elapsed := time.Since(start)
	violations := append(load.Violations(), svc.Violations()...)
	svc.Close()
	if len(violations) > 0 {
		return row, fmt.Errorf("wire %s: %s", transport, violations[0])
	}
	row.Requests = load.Issued
	row.Seconds = elapsed.Seconds()
	row.Degraded = load.Degraded
	row.Detected = load.Detected
	if elapsed > 0 {
		row.Throughput = float64(load.Issued) / elapsed.Seconds()
	}
	return row, nil
}

// runWireFailover SIGKILLs workers round-robin under live load and
// measures the supervisor's recovery time per transport.
func runWireFailover(opts Options, transport string, shards, clients int) (WireFailoverRow, error) {
	const sigkills = 2
	row := WireFailoverRow{Transport: transport, SigKills: sigkills}
	dir, err := os.MkdirTemp("", "dangsan-bench-wire")
	if err != nil {
		return row, fmt.Errorf("wire failover %s: %w", transport, err)
	}
	defer os.RemoveAll(dir)
	cfg := wireServiceConfig(opts, shards, dir)
	cfg.Transport = transport
	svc, err := service.New(cfg)
	if err != nil {
		return row, fmt.Errorf("wire failover %s: %w", transport, err)
	}
	defer svc.Close()

	stop := make(chan struct{})
	loadCh := make(chan service.LoadResult, 1)
	go func() {
		loadCh <- service.RunLoad(svc, service.LoadConfig{
			Clients:     clients,
			Seed:        uint64(opts.Seed)*0x2545f491 + 11,
			HeavyFrac:   0.05,
			HeavyStores: 300,
			Stop:        stop,
		})
	}()
	// Build worker state worth rebuilding before the first signal.
	time.Sleep(50 * time.Millisecond)
	for k := 0; k < sigkills; k++ {
		shard := k % shards
		before := svc.Counters().Failovers
		if derr := svc.Disrupt(shard, "sigkill"); derr != nil {
			close(stop)
			<-loadCh
			return row, fmt.Errorf("wire failover %s: %w", transport, derr)
		}
		deadline := time.Now().Add(15 * time.Second)
		for svc.Counters().Failovers <= before {
			if time.Now().After(deadline) {
				close(stop)
				<-loadCh
				return row, fmt.Errorf("wire failover %s: shard %d never recovered", transport, shard)
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	load := <-loadCh
	if v := append(load.Violations(), svc.Violations()...); len(v) > 0 {
		return row, fmt.Errorf("wire failover %s: %s", transport, v[0])
	}
	c := svc.Counters()
	row.Failovers = c.Failovers
	row.Issued = load.Issued
	row.Degraded = load.Degraded
	row.Replayed = c.ReplayedObjects
	row.RecoveredLocs = c.RecoveredLocs
	var sum, max time.Duration
	times := svc.RecoveryTimes()
	for _, d := range times {
		sum += d
		if d > max {
			max = d
		}
	}
	if len(times) > 0 {
		row.RecoveryMeanMs = float64(sum.Microseconds()) / float64(len(times)) / 1000
		row.RecoveryMaxMs = float64(max.Microseconds()) / 1000
	}
	return row, nil
}
