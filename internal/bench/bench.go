// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§8): run-time overhead on the SPEC
// analogs (Fig. 9), scalability and memory on the PARSEC/SPLASH-2X analogs
// (Figs. 10 and 12), SPEC memory overhead (Fig. 11), web-server throughput
// and memory (§8.2/§8.3), the Table 1 statistics, and the ablations behind
// the design choices (lookback size, pointer compression, and the
// shadow-vs-tree pointer-to-object mapper).
package bench

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"dangsan/internal/detectors"
	"dangsan/internal/detectors/camp"
	"dangsan/internal/detectors/dangnull"
	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/detectors/freesentry"
	"dangsan/internal/detectors/xtag"
	"dangsan/internal/faultinject"
	"dangsan/internal/obs"
	"dangsan/internal/pointerlog"
	"dangsan/internal/proc"
)

// Kind names a detector configuration.
type Kind string

// The four systems the paper compares, plus the two checked-dereference
// backends of the five-way ablation.
const (
	Baseline   Kind = "baseline"
	DangSan    Kind = "dangsan"
	DangNULL   Kind = "dangnull"
	FreeSentry Kind = "freesentry"
	XTag       Kind = "xtag"
	CAMP       Kind = "camp"
)

// AllKinds returns the paper's four systems in presentation order. The
// figure experiments keep comparing exactly these so their numbers stay
// stable; the checked-dereference backends join in FiveWayKinds.
func AllKinds() []Kind { return []Kind{Baseline, DangSan, DangNULL, FreeSentry} }

// FiveWayKinds returns the full detector matrix of the five-way ablation:
// the baseline, the three pointer-invalidation backends, and the two
// checked-dereference backends (xtag pointer tagging, camp range checks).
func FiveWayKinds() []Kind {
	return []Kind{Baseline, DangSan, DangNULL, FreeSentry, XTag, CAMP}
}

// NewDetector builds a fresh detector of the given kind.
func NewDetector(kind Kind) (detectors.Detector, error) {
	switch kind {
	case Baseline:
		return detectors.None{}, nil
	case DangSan:
		return dangsan.New(), nil
	case DangNULL:
		return dangnull.New(), nil
	case FreeSentry:
		return freesentry.New(), nil
	case XTag:
		return xtag.New(), nil
	case CAMP:
		return camp.New(), nil
	default:
		return nil, fmt.Errorf("bench: unknown detector %q", kind)
	}
}

// NewDangSanWithConfig builds a DangSan detector with explicit pointer-log
// tunables, for the ablation experiments.
func NewDangSanWithConfig(cfg pointerlog.Config) detectors.Detector {
	return dangsan.NewWithConfig(cfg)
}

// Measurement is one timed run.
type Measurement struct {
	// Seconds is the wall-clock run time.
	Seconds float64
	// PeakFootprint is the maximum observed simulated RSS plus detector
	// metadata (sampled during the run and at its end).
	PeakFootprint uint64
	// Stats carries DangSan's pointer-log counters when the detector was
	// DangSan, zero otherwise.
	Stats pointerlog.Snapshot
	// Injected counts fault-plane injections during the run (0 when
	// injection was off).
	Injected uint64
}

// Measure times run against a fresh process using the given detector,
// sampling the memory footprint concurrently.
func Measure(det detectors.Detector, run func(p *proc.Process) error) (Measurement, error) {
	return MeasureWith(det, run, nil)
}

// MeasureWith is Measure with an observability registry attached to the
// process (and through it the allocator and detector). Successive
// measurements sharing one registry accumulate counters across runs —
// snapshot between runs to separate them.
func MeasureWith(det detectors.Detector, run func(p *proc.Process) error, reg *obs.Registry) (Measurement, error) {
	return measureProc(det, run, reg, proc.Options{})
}

// measureProc is the common measurement core; popts configures the
// process (heap size, allocator-side fault plane).
func measureProc(det detectors.Detector, run func(p *proc.Process) error, reg *obs.Registry, popts proc.Options) (Measurement, error) {
	p := proc.NewWithOptions(det, popts)
	p.AttachMetrics(reg)
	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				f := p.MemoryFootprint()
				for {
					old := peak.Load()
					if f <= old || peak.CompareAndSwap(old, f) {
						break
					}
				}
			}
		}
	}()
	start := time.Now()
	err := run(p)
	// Quiesce inside the timed region: deferred-free mode must pay for its
	// pending epoch drains, not push them past the stopwatch.
	p.Quiesce()
	elapsed := time.Since(start)
	close(stop)
	<-done
	if err != nil {
		return Measurement{}, err
	}
	if f := p.MemoryFootprint(); f > peak.Load() {
		peak.Store(f)
	}
	m := Measurement{
		Seconds:       elapsed.Seconds(),
		PeakFootprint: peak.Load(),
	}
	if d, ok := det.(*dangsan.Detector); ok {
		m.Stats = d.Stats()
		if v := d.AuditViolations(); len(v) > 0 {
			return m, fmt.Errorf("bench: audit violations: %s", v[0])
		}
	}
	return m, nil
}

// MeasureN runs the measurement opts.Repeat times with a fresh detector
// and process each time, returning the fastest run (the standard way to
// suppress scheduler noise) with the largest observed footprint. The
// options' registry, if any, is attached to every run. When the options
// arm fault injection, each repeat gets its own plane — passed to the
// factory so the detector and the allocator share it — making the failure
// pattern identical across repeats.
func MeasureN(opts Options, factory func(*faultinject.Plane) (detectors.Detector, error), run func(p *proc.Process) error) (Measurement, error) {
	n := opts.Repeat
	if n < 1 {
		n = 1
	}
	var best Measurement
	for i := 0; i < n; i++ {
		plane := opts.NewPlane()
		det, err := factory(plane)
		if err != nil {
			return Measurement{}, err
		}
		m, err := measureProc(det, run, opts.Metrics,
			proc.Options{HeapBytes: opts.HeapBytes, Faults: plane})
		if err != nil {
			return Measurement{}, err
		}
		m.Injected = plane.TotalInjected()
		if i == 0 || m.Seconds < best.Seconds {
			peak := best.PeakFootprint
			best = m
			if peak > best.PeakFootprint {
				best.PeakFootprint = peak
			}
		} else if m.PeakFootprint > best.PeakFootprint {
			best.PeakFootprint = m.PeakFootprint
		}
	}
	return best, nil
}

// Geomean returns the geometric mean of xs (which must be positive);
// returns NaN for an empty slice.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
