package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
)

// benchArtifactRE matches the committed per-PR artifact names. Other
// -bench-json values (BENCH_ci.json, scratch paths, "-") pass through
// untouched.
var benchArtifactRE = regexp.MustCompile(`^BENCH_\d+\.json$`)

// ResolveBenchJSONPath fixes where a BENCH_<n>.json artifact lands. The
// bare name used to resolve against the CWD, so a run started anywhere but
// the repo root silently dropped the artifact outside the tree — or, run
// twice, overwrote a committed one. Bare BENCH_<n>.json names now anchor
// to the enclosing git repository's root, and a name that already exists
// there is an error: artifact numbers are append-only, so a collision
// means either a stale re-run (delete the file first, deliberately) or a
// number already claimed by an earlier PR.
//
// Paths with a directory component, absolute paths, "-" (stdout), and
// names outside the BENCH_<n>.json pattern resolve exactly as before.
// Outside any git repository the name stays CWD-relative (still with the
// collision check), so scratch runs keep working.
func ResolveBenchJSONPath(path string) (string, error) {
	if path == "-" || path != filepath.Base(path) || !benchArtifactRE.MatchString(path) {
		return path, nil
	}
	if root, ok := gitRoot(); ok {
		path = filepath.Join(root, path)
	}
	if _, err := os.Stat(path); err == nil {
		return "", fmt.Errorf("bench: %s already exists; artifact numbers are append-only — remove it first to regenerate", path)
	} else if !os.IsNotExist(err) {
		return "", err
	}
	return path, nil
}

// gitRoot walks up from the CWD to the nearest directory containing .git
// (a directory for a checkout, a file for a worktree or submodule).
func gitRoot() (string, bool) {
	dir, err := os.Getwd()
	if err != nil {
		return "", false
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, ".git")); err == nil {
			return dir, true
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", false
		}
		dir = parent
	}
}
