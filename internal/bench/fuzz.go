package bench

import (
	"fmt"
	"time"

	"dangsan/internal/differ"
)

// FuzzResult is one differential-fuzzing sweep: the differ's report plus the
// wall-clock cost, so the experiment can quote a programs/second rate
// alongside its verdict.
type FuzzResult struct {
	Report  differ.SweepReport
	Seconds float64
}

// Clean reports whether the sweep is clean: no divergence in any benign
// matrix cell and every mutation cell caught its injected dangling use.
func (r FuzzResult) Clean() bool {
	return len(r.Report.Divergences) == 0 &&
		r.Report.MutationDetected == r.Report.MutationDetectors
}

// RunFuzz runs the differential-fuzzing experiment: Scale*500 seeds (minimum
// 50) starting at Seed, each swept through the full mode x detector x config
// matrix plus its mutated (known-dangling) variant. Options that shape the
// simulated process (fault injection, metadata caps) do not apply here — the
// differ owns its configurations so the oracle stays exact.
func RunFuzz(opts Options, progress func(string)) (FuzzResult, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	seeds := int(500 * opts.Scale)
	if seeds < 50 {
		seeds = 50
	}
	if progress != nil {
		progress(fmt.Sprintf("fuzz: sweeping %d seeds from %d", seeds, opts.Seed))
	}
	start := time.Now()
	report := differ.Sweep(differ.SweepOptions{
		Start:  opts.Seed,
		Seeds:  seeds,
		Mutate: true,
	})
	return FuzzResult{Report: report, Seconds: time.Since(start).Seconds()}, nil
}

// FormatFuzz renders the sweep summary plus every divergence (each one is a
// bug in the toolchain or the oracle, so none are elided).
func FormatFuzz(r FuzzResult) string {
	var t tw
	t.row("seeds", "matrix runs", "programs/s", "runs/s", "mutation detection", "divergences")
	progRate, runRate := "-", "-"
	if r.Seconds > 0 {
		progRate = fmt.Sprintf("%.1f", float64(r.Report.Seeds)/r.Seconds)
		runRate = fmt.Sprintf("%.0f", float64(r.Report.Runs)/r.Seconds)
	}
	det := "-"
	if r.Report.MutationDetectors > 0 {
		det = fmt.Sprintf("%d/%d (%.1f%%)", r.Report.MutationDetected, r.Report.MutationDetectors,
			100*float64(r.Report.MutationDetected)/float64(r.Report.MutationDetectors))
	}
	t.row(fmt.Sprintf("%d", r.Report.Seeds), fmt.Sprintf("%d", r.Report.Runs),
		progRate, runRate, det, fmt.Sprintf("%d", len(r.Report.Divergences)))
	s := "Differential fuzzing: generated programs vs cross-detector oracle\n" + t.String()
	for _, d := range r.Report.Divergences {
		s += fmt.Sprintf("divergence: seed=%d run=%s: %s\n", d.Seed, d.Run, d.Msg)
	}
	return s
}
