package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// chdir moves the test into dir and restores the CWD at cleanup.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

// fakeRepo builds <tmp>/repo/.git and <tmp>/repo/sub, returning both.
func fakeRepo(t *testing.T) (root, sub string) {
	t.Helper()
	root = filepath.Join(t.TempDir(), "repo")
	sub = filepath.Join(root, "internal", "bench")
	if err := os.MkdirAll(filepath.Join(root, ".git"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	return root, sub
}

// Regression: a bare BENCH_<n>.json from a subdirectory used to land in
// the CWD (outside version control's sight), so the committed artifact
// trajectory silently stayed empty. It must anchor to the git root.
func TestResolveBenchJSONAnchorsToGitRoot(t *testing.T) {
	root, sub := fakeRepo(t)
	chdir(t, sub)
	got, err := ResolveBenchJSONPath("BENCH_9.json")
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(root, "BENCH_9.json"); got != want {
		t.Fatalf("resolved %q, want %q", got, want)
	}
}

// An artifact number already present at the root is a hard error, not a
// silent overwrite: numbers are append-only across PRs.
func TestResolveBenchJSONCollision(t *testing.T) {
	root, sub := fakeRepo(t)
	if err := os.WriteFile(filepath.Join(root, "BENCH_9.json"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	chdir(t, sub)
	if _, err := ResolveBenchJSONPath("BENCH_9.json"); err == nil {
		t.Fatal("existing artifact overwritten without error")
	}
}

// Everything outside the bare BENCH_<n>.json pattern keeps its old
// meaning: stdout, scratch names, explicit directories, absolute paths.
func TestResolveBenchJSONPassThrough(t *testing.T) {
	_, sub := fakeRepo(t)
	chdir(t, sub)
	for _, p := range []string{
		"-",
		"BENCH_ci.json",
		"out.json",
		filepath.Join("results", "BENCH_9.json"),
		filepath.Join(sub, "BENCH_9.json"),
	} {
		got, err := ResolveBenchJSONPath(p)
		if err != nil {
			t.Fatalf("%q: %v", p, err)
		}
		if got != p {
			t.Fatalf("%q resolved to %q, want pass-through", p, got)
		}
	}
}

// Outside any repository the name stays CWD-relative but still refuses to
// clobber an existing artifact.
func TestResolveBenchJSONNoRepo(t *testing.T) {
	dir := t.TempDir()
	chdir(t, dir)
	got, err := ResolveBenchJSONPath("BENCH_3.json")
	if err != nil {
		t.Fatal(err)
	}
	if got != "BENCH_3.json" {
		t.Fatalf("resolved %q, want CWD-relative name", got)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_3.json"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ResolveBenchJSONPath("BENCH_3.json"); err == nil {
		t.Fatal("existing artifact overwritten without error")
	}
}
