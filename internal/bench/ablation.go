package bench

import (
	"fmt"
	"time"

	"dangsan/internal/pointerlog"
	"dangsan/internal/proc"
	"dangsan/internal/rbtree"
	"dangsan/internal/shadow"
	"dangsan/internal/vmem"
	"dangsan/internal/workloads"
)

// LookbackPoint is one lookback-sweep measurement (paper §4.4: "overall
// performance is generally similar in the range between one and four, and
// begins to degrade with higher numbers"; the lookback also bounds log
// growth).
type LookbackPoint struct {
	Lookback int
	Seconds  float64
	LogBytes uint64
}

// DefaultLookbacks is the sweep grid.
func DefaultLookbacks() []int { return []int{0, 1, 2, 4, 8, 16, 32} }

// RunLookbackSweep measures a duplicate-heavy workload (the perlbench
// analog) across lookback windows.
func RunLookbackSweep(lookbacks []int, opts Options, progress func(string)) ([]LookbackPoint, error) {
	opts = opts.normalized()
	if len(lookbacks) == 0 {
		lookbacks = DefaultLookbacks()
	}
	prof, err := workloads.SPECProfileByName("perlbench")
	if err != nil {
		return nil, err
	}
	prof = scaleSpec(prof, opts.Scale)
	var points []LookbackPoint
	for _, lb := range lookbacks {
		if progress != nil {
			progress(fmt.Sprintf("lookback %d", lb))
		}
		cfg := pointerlog.DefaultConfig()
		cfg.Lookback = lb
		det := NewDangSanWithConfig(cfg)
		m, err := Measure(det, func(p *proc.Process) error {
			return workloads.RunSPEC(p, prof, opts.Seed)
		})
		if err != nil {
			return nil, fmt.Errorf("lookback %d: %w", lb, err)
		}
		points = append(points, LookbackPoint{
			Lookback: lb,
			Seconds:  m.Seconds,
			LogBytes: m.Stats.LogBytes,
		})
	}
	return points, nil
}

// CompressionPoint is one compression-ablation measurement (paper §6:
// pointer compression saves up to 3x log space on spatially local stores).
type CompressionPoint struct {
	Compression bool
	Seconds     float64
	LogBytes    uint64
	Compressed  uint64
}

// RunCompressionAblation measures a locality-heavy workload — array-style
// pointer fills into adjacent slots, the access pattern compression was
// designed for — with compression on and off. Duplicates are disabled so
// every store reaches the log and the entry-packing effect is isolated.
func RunCompressionAblation(opts Options, progress func(string)) ([]CompressionPoint, error) {
	opts = opts.normalized()
	prof := workloads.SPECProfile{
		Name:        "compression-ablation",
		Objects:     4000,
		TotalStores: 1_200_000,
		DupRate:     0, // every store is a distinct adjacent slot
		StaleRate:   0,
		LiveWindow:  1000,
		SizeMin:     64,
		SizeMax:     1024,
		ComputeOps:  50_000,
	}
	prof = scaleSpec(prof, opts.Scale)
	var points []CompressionPoint
	for _, comp := range []bool{false, true} {
		if progress != nil {
			progress(fmt.Sprintf("compression=%v", comp))
		}
		cfg := pointerlog.DefaultConfig()
		cfg.Compression = comp
		det := NewDangSanWithConfig(cfg)
		m, err := Measure(det, func(p *proc.Process) error {
			return workloads.RunSPEC(p, prof, opts.Seed)
		})
		if err != nil {
			return nil, fmt.Errorf("compression=%v: %w", comp, err)
		}
		points = append(points, CompressionPoint{
			Compression: comp,
			Seconds:     m.Seconds,
			LogBytes:    m.Stats.LogBytes,
			Compressed:  m.Stats.Compressed,
		})
	}
	return points, nil
}

// ShadowPoint compares the two shadow-memory schemes of the paper's §4.3
// on one object size: DangSan's variable-compression-ratio metapagetable
// against a traditional constant-ratio (8:8) shadow, on the two axes the
// paper names — metadata bytes per object and the cost of initializing the
// shadow at allocation time.
type ShadowPoint struct {
	ObjectBytes   uint64
	FixedBytes    uint64
	VariableBytes uint64
	FixedNs       float64
	VariableNs    float64
}

// DefaultShadowSizes is the object-size grid.
func DefaultShadowSizes() []uint64 {
	return []uint64{4 << 10, 64 << 10, 1 << 20, 4 << 20}
}

// RunShadowAblation measures both schemes.
func RunShadowAblation(sizes []uint64, progress func(string)) ([]ShadowPoint, error) {
	if len(sizes) == 0 {
		sizes = DefaultShadowSizes()
	}
	var points []ShadowPoint
	for _, size := range sizes {
		if progress != nil {
			progress(fmt.Sprintf("shadow ablation %d KiB", size>>10))
		}
		iters := int(64 << 20 / size) // bound total work
		if iters < 8 {
			iters = 8
		}

		ft := shadow.NewFixedTable()
		before := ft.Bytes()
		start := time.Now()
		for i := 0; i < iters; i++ {
			ft.CreateObject(vmem.HeapBase, size, uint64(i+1))
		}
		fixedNs := float64(time.Since(start).Nanoseconds()) / float64(iters)
		fixedBytes := ft.Bytes() - before

		vt := shadow.NewTable()
		beforeV := vt.Bytes()
		start = time.Now()
		for i := 0; i < iters; i++ {
			vt.CreateObject(vmem.HeapBase, size, vmem.PageSize, uint64(i+1))
		}
		variableNs := float64(time.Since(start).Nanoseconds()) / float64(iters)
		variableBytes := vt.Bytes() - beforeV

		points = append(points, ShadowPoint{
			ObjectBytes:   size,
			FixedBytes:    fixedBytes,
			VariableBytes: variableBytes,
			FixedNs:       fixedNs,
			VariableNs:    variableNs,
		})
	}
	return points, nil
}

// MapperPoint compares pointer-to-object lookup cost at a given live-object
// count: the constant-time shadow map against the balanced tree DangNULL
// uses (paper §4.3's design argument).
type MapperPoint struct {
	Objects  int
	ShadowNs float64
	TreeNs   float64
}

// DefaultMapperSizes is the object-count grid.
func DefaultMapperSizes() []int { return []int{1_000, 10_000, 100_000, 1_000_000} }

// RunMapperAblation measures both mappers' lookup latency.
func RunMapperAblation(sizes []int, opts Options, progress func(string)) ([]MapperPoint, error) {
	opts = opts.normalized()
	if len(sizes) == 0 {
		sizes = DefaultMapperSizes()
	}
	const lookups = 2_000_000
	var points []MapperPoint
	for _, n := range sizes {
		if progress != nil {
			progress(fmt.Sprintf("mapper n=%d", n))
		}
		// Lay out n 64-byte objects.
		tbl := shadow.NewTable()
		var tree rbtree.Tree
		for i := 0; i < n; i++ {
			base := vmem.HeapBase + uint64(i)*64
			tbl.CreateObject(base, 64, 8, uint64(i+1))
			tree.Insert(base, base+64, uint64(i+1))
		}
		probe := func(lookup func(addr uint64) bool) float64 {
			start := time.Now()
			addr := uint64(vmem.HeapBase)
			stride := uint64(64*2654435761) % (uint64(n) * 64)
			for i := 0; i < lookups; i++ {
				if !lookup(vmem.HeapBase + addr%uint64(n*64)) {
					panic("bench: mapper lookup miss")
				}
				addr += stride
			}
			return float64(time.Since(start).Nanoseconds()) / lookups
		}
		shadowNs := probe(func(a uint64) bool { return tbl.Lookup(a) != 0 })
		treeNs := probe(func(a uint64) bool {
			_, ok := tree.LookupContaining(a)
			return ok
		})
		points = append(points, MapperPoint{Objects: n, ShadowNs: shadowNs, TreeNs: treeNs})
	}
	return points, nil
}
