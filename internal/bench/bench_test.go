package bench

import (
	"strings"
	"testing"

	"dangsan/internal/detectors"
	"dangsan/internal/faultinject"
	"dangsan/internal/obs"
	"dangsan/internal/proc"
	"dangsan/internal/workloads"
)

var smoke = Options{Scale: 0.02, Seed: 1}

func TestNewDetectorKinds(t *testing.T) {
	for _, k := range FiveWayKinds() {
		d, err := NewDetector(k)
		if err != nil || d == nil {
			t.Fatalf("%s: %v", k, err)
		}
		if k != Baseline && d.Name() != string(k) {
			t.Errorf("detector name %q != kind %q", d.Name(), k)
		}
	}
	if _, err := NewDetector("bogus"); err == nil {
		t.Fatal("bogus kind accepted")
	}
	// The figure experiments stay pinned to the paper's four systems; the
	// five-way list extends, never reorders, that set.
	for i, k := range AllKinds() {
		if FiveWayKinds()[i] != k {
			t.Fatalf("FiveWayKinds()[%d] = %s, want %s", i, FiveWayKinds()[i], k)
		}
	}
}

// The metrics/audit path through the harness: an Options-built DangSan
// detector with a registry attached must accumulate counters across
// measured runs and pass the accounting audit.
func TestMeasureWithMetricsAndAudit(t *testing.T) {
	reg := obs.NewRegistry()
	opts := Options{Metrics: reg, Audit: true}
	prof, err := workloads.SPECProfileByName("403.gcc")
	if err != nil {
		t.Fatal(err)
	}
	prof = scaleSpec(prof, 0.02)
	var mallocs uint64
	for run := 0; run < 2; run++ {
		det, err := opts.NewDetector(DangSan, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := MeasureWith(det, func(p *proc.Process) error {
			return workloads.RunSPEC(p, prof, 1)
		}, reg); err != nil {
			t.Fatal(err)
		}
		s := reg.Snapshot()
		if got := s.Counters["proc.mallocs"]; got <= mallocs {
			t.Fatalf("run %d: proc.mallocs = %d, want > %d (accumulating)", run, got, mallocs)
		} else {
			mallocs = got
		}
		if s.Histograms["pointerlog.register_ns"].Count == 0 {
			t.Fatalf("run %d: register_ns histogram empty", run)
		}
	}
}

// The fault options flow through MeasureN: a fresh plane per repeat shared
// by detector and allocator, injections reported on the measurement, and a
// degraded-but-successful run when the rate is survivable.
func TestMeasureNWithFaults(t *testing.T) {
	opts := Options{
		Seed:        3,
		Repeat:      2,
		FaultRate:   0.05,
		FaultBudget: 16,
		HeapBytes:   8 << 20,
	}
	prof, err := workloads.ServerProfileByName("apache")
	if err != nil {
		t.Fatal(err)
	}
	m, err := MeasureN(opts,
		func(pl *faultinject.Plane) (detectors.Detector, error) { return opts.NewDetector(DangSan, pl) },
		func(p *proc.Process) error { return workloads.RunServer(p, prof, 2, 150, opts.Seed) })
	if err != nil {
		t.Fatalf("pressured measurement failed: %v", err)
	}
	if m.Injected == 0 {
		t.Fatal("no injections reported despite FaultRate > 0")
	}
	if m.Stats.DegradedObjects == 0 {
		t.Fatal("metadata-site injections produced no degraded objects")
	}

	// Injection off: the same measurement reports zero injections.
	opts.FaultRate = 0
	m, err = MeasureN(opts,
		func(pl *faultinject.Plane) (detectors.Detector, error) { return opts.NewDetector(DangSan, pl) },
		func(p *proc.Process) error { return workloads.RunServer(p, prof, 2, 50, opts.Seed) })
	if err != nil {
		t.Fatal(err)
	}
	if m.Injected != 0 || m.Stats.DegradedObjects != 0 {
		t.Fatalf("injection-off run touched: injected=%d degraded=%d", m.Injected, m.Stats.DegradedObjects)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Fatalf("Geomean(2,8) = %f", g)
	}
	if g := Geomean([]float64{1, 1, 1}); g != 1 {
		t.Fatalf("Geomean(1s) = %f", g)
	}
	if g := Geomean(nil); g == g { // NaN check
		t.Fatalf("Geomean(nil) = %f, want NaN", g)
	}
}

func TestRunSPECSmoke(t *testing.T) {
	rows, err := RunSPEC(smoke, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, k := range AllKinds() {
			m, ok := r.ByKind[k]
			if !ok || m.Seconds <= 0 {
				t.Fatalf("%s/%s: measurement %+v, %v", r.Benchmark, k, m, ok)
			}
		}
		if r.ByKind[DangSan].PeakFootprint == 0 {
			t.Fatalf("%s: zero footprint", r.Benchmark)
		}
	}
	out := FormatFig9(rows)
	if !strings.Contains(out, "geomean dangsan") || !strings.Contains(out, "400.perlbench") {
		t.Fatalf("fig9 output:\n%s", out)
	}
	out11 := FormatFig11(rows)
	if !strings.Contains(out11, "Figure 11") {
		t.Fatal("fig11 output malformed")
	}
}

func TestRunScalabilitySmoke(t *testing.T) {
	opts := smoke
	opts.Kinds = []Kind{Baseline, DangSan, FreeSentry}
	rows, err := RunScalability([]int{1, 2}, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if len(r.Cells) != 2 {
			t.Fatalf("%s: cells = %d", r.Benchmark, len(r.Cells))
		}
		// FreeSentry only at one thread.
		if _, ok := r.Cells[0].ByKind[FreeSentry]; !ok {
			t.Fatalf("%s: freesentry missing at 1 thread", r.Benchmark)
		}
		if _, ok := r.Cells[1].ByKind[FreeSentry]; ok {
			t.Fatalf("%s: freesentry ran multithreaded", r.Benchmark)
		}
	}
	if out := FormatFig10(rows); !strings.Contains(out, "Figure 10") {
		t.Fatal("fig10 output malformed")
	}
	if out := FormatFig12(rows); !strings.Contains(out, "Figure 12") {
		t.Fatal("fig12 output malformed")
	}
}

func TestRunServersSmoke(t *testing.T) {
	opts := smoke
	opts.Kinds = []Kind{Baseline, DangSan}
	rows, err := RunServers(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if out := FormatServers(rows); !strings.Contains(out, "cherokee") {
		t.Fatal("server output malformed")
	}
}

func TestRunTable1Smoke(t *testing.T) {
	rows, err := RunTable1(smoke, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("rows = %d", len(rows))
	}
	// DangSan must track at least as many pointers as DangNULL everywhere.
	for _, r := range rows {
		if r.DangNULLPtrs > r.DangSan.Registered {
			t.Errorf("%s: dangnull tracked more (%d > %d)",
				r.Benchmark, r.DangNULLPtrs, r.DangSan.Registered)
		}
	}
	if out := FormatTable1(rows); !strings.Contains(out, "#hashtable") {
		t.Fatal("table1 output malformed")
	}
}

func TestLookbackSweepSmoke(t *testing.T) {
	points, err := RunLookbackSweep([]int{0, 4}, smoke, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// Without lookback the logs must be (weakly) larger.
	if points[0].LogBytes < points[1].LogBytes {
		t.Errorf("no-lookback logs (%d) smaller than lookback-4 logs (%d)",
			points[0].LogBytes, points[1].LogBytes)
	}
	if out := FormatLookback(points); !strings.Contains(out, "lookback") {
		t.Fatal("lookback output malformed")
	}
}

func TestCompressionAblationSmoke(t *testing.T) {
	points, err := RunCompressionAblation(smoke, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	off, on := points[0], points[1]
	if on.Compressed == 0 {
		t.Error("compression never fired on the locality-heavy analog")
	}
	if on.LogBytes > off.LogBytes {
		t.Errorf("compressed logs larger: %d > %d", on.LogBytes, off.LogBytes)
	}
	if out := FormatCompression(points); !strings.Contains(out, "compression") {
		t.Fatal("compression output malformed")
	}
}

func TestMapperAblationSmoke(t *testing.T) {
	points, err := RunMapperAblation([]int{1000, 100000}, smoke, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// The tree must degrade relative to the shadow map as objects grow —
	// the paper's §4.3 argument.
	small := points[0].TreeNs / points[0].ShadowNs
	large := points[1].TreeNs / points[1].ShadowNs
	if large <= small*0.8 {
		t.Errorf("tree did not degrade: %.1fx at 1e3 vs %.1fx at 1e5", small, large)
	}
	if out := FormatMapper(points); !strings.Contains(out, "rbtree") {
		t.Fatal("mapper output malformed")
	}
}

func TestShadowAblationSmoke(t *testing.T) {
	points, err := RunShadowAblation([]uint64{4 << 10, 1 << 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	big := points[1]
	// The §4.3 claims: fixed-ratio metadata ~1:1 with the object, and far
	// more expensive to initialize than the variable-ratio scheme.
	if big.FixedBytes < big.ObjectBytes {
		t.Fatalf("fixed metadata %d below object size %d", big.FixedBytes, big.ObjectBytes)
	}
	if big.FixedNs < 4*big.VariableNs {
		t.Fatalf("fixed create %.0fns not clearly above variable %.0fns", big.FixedNs, big.VariableNs)
	}
	if out := FormatShadow(points); !strings.Contains(out, "variable") {
		t.Fatal("shadow output malformed")
	}
}

func TestRunTieredSmoke(t *testing.T) {
	opts := smoke
	opts.Audit = true
	rows, err := RunTiered(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	off, tight := rows[0], rows[3]
	if off.Spills != 0 || off.SpilledLogBytes != 0 {
		t.Fatalf("tiering-off row spilled: %+v", off)
	}
	// The tightest threshold must actually shed log bytes to disk and end
	// with a smaller resident footprint than the untiered baseline.
	if tight.Spills == 0 || tight.SpilledLogBytes == 0 {
		t.Fatalf("16KiB row never spilled: %+v", tight)
	}
	if tight.ResidentLogBytes >= off.ResidentLogBytes {
		t.Errorf("tiered resident %d not below untiered %d",
			tight.ResidentLogBytes, off.ResidentLogBytes)
	}
	if out := FormatTiered(rows); !strings.Contains(out, "resident") {
		t.Fatal("tiered output malformed")
	}
}

func TestRunFiveWaySmoke(t *testing.T) {
	rep, err := RunFiveWay(smoke, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 19 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		for _, k := range FiveWayKinds() {
			if r.Seconds[k] <= 0 {
				t.Fatalf("%s/%s: no measurement", r.Benchmark, k)
			}
			if r.Footprint[k] == 0 {
				t.Fatalf("%s/%s: zero footprint", r.Benchmark, k)
			}
		}
		// Benign workloads: the check paths must have run and stayed silent.
		if r.XTag.Objects == 0 || r.XTag.Checks == 0 {
			t.Fatalf("%s: xtag check path idle: %+v", r.Benchmark, r.XTag)
		}
		if r.CAMP.Objects == 0 || r.CAMP.Checks == 0 {
			t.Fatalf("%s: camp check path idle: %+v", r.Benchmark, r.CAMP)
		}
		if r.XTag.Faults != 0 || r.CAMP.Faults != 0 {
			t.Fatalf("%s: faults on benign run: xtag=%d camp=%d",
				r.Benchmark, r.XTag.Faults, r.CAMP.Faults)
		}
	}
	e := rep.Elision
	if e.Seeds < 10 {
		t.Fatalf("elision seeds = %d", e.Seeds)
	}
	if e.DerefChecks == 0 {
		t.Fatal("elision sweep emitted no checks")
	}
	if e.DynamicChecksOpt > e.DynamicChecks {
		t.Fatalf("elision increased dynamic checks: %d -> %d",
			e.DynamicChecks, e.DynamicChecksOpt)
	}
	out := FormatFiveWay(rep)
	for _, want := range []string{"Five-way ablation", "geomean xtag", "geomean camp", "CAMP check elision"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fiveway output missing %q:\n%s", want, out)
		}
	}
}
