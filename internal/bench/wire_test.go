package bench

import "testing"

// TestRunWireSmoke drives the full transport comparison at smoke scale:
// every transport must produce throughput, and every SIGKILL failover
// sweep must complete with measured recovery times and journal replays.
func TestRunWireSmoke(t *testing.T) {
	rep, err := RunWire(Options{Scale: 0.1, Seed: 7, HeapBytes: 32 << 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Throughput) != 3 {
		t.Fatalf("throughput rows = %d, want 3", len(rep.Throughput))
	}
	for _, r := range rep.Throughput {
		if r.Requests == 0 || r.Throughput <= 0 {
			t.Errorf("transport %s: no throughput measured (%+v)", r.Transport, r)
		}
	}
	if len(rep.Failover) != 3 {
		t.Fatalf("failover rows = %d, want 3", len(rep.Failover))
	}
	for _, r := range rep.Failover {
		if r.Failovers < uint64(r.SigKills) {
			t.Errorf("transport %s: %d sigkills but %d failovers", r.Transport, r.SigKills, r.Failovers)
		}
		if r.RecoveryMeanMs <= 0 {
			t.Errorf("transport %s: no recovery time recorded", r.Transport)
		}
		if r.Replayed == 0 {
			t.Errorf("transport %s: no journal objects replayed", r.Transport)
		}
	}
	out := FormatWire(rep)
	if out == "" {
		t.Fatal("empty rendering")
	}
	t.Logf("\n%s", out)
}
