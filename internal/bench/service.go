package bench

import (
	"fmt"
	"os"
	"time"

	"dangsan/internal/pointerlog"
	"dangsan/internal/service"
)

// ServiceScaleRow is one shard-count point of the service scaling
// experiment: fixed client population, throughput as the address space is
// split across more supervised workers.
type ServiceScaleRow struct {
	Shards     int     `json:"shards"`
	Clients    int     `json:"clients"`
	Requests   uint64  `json:"requests"`
	Seconds    float64 `json:"seconds"`
	Throughput float64 `json:"ops_per_sec"`
	Degraded   uint64  `json:"degraded"`
	Detected   uint64  `json:"detected"`
}

// ServiceFailoverRow is one kill-count point of the failover experiment:
// workers killed under live load, the supervisor's measured recovery time
// (drain + cold-segment read + journal replay + audit), and the fraction
// of client requests that rode through as fail-open degraded verdicts.
type ServiceFailoverRow struct {
	Kills          int     `json:"kills"`
	Failovers      uint64  `json:"failovers"`
	RecoveryMeanMs float64 `json:"recovery_mean_ms"`
	RecoveryMaxMs  float64 `json:"recovery_max_ms"`
	Issued         uint64  `json:"issued"`
	Degraded       uint64  `json:"degraded"`
	DegradedFrac   float64 `json:"degraded_frac"`
	Replayed       uint64  `json:"replayed_objects"`
	RecoveredLocs  uint64  `json:"recovered_spilled_locs"`
}

// ServiceReport bundles both service experiments for BENCH_9.json.
type ServiceReport struct {
	Scaling  []ServiceScaleRow    `json:"scaling"`
	Failover []ServiceFailoverRow `json:"failover"`
}

// serviceShardCounts is the scaling axis.
func serviceShardCounts() []int { return []int{1, 2, 4, 8} }

// RunService runs the supervised-service experiments: a throughput-vs-
// shard-count sweep with no disruption, then a failover sweep on a fixed
// 4-shard service (audit armed, cold tier at the minimum spill threshold)
// where workers are killed under live load and recovery time and the
// degraded-request fraction are measured. Any invariant violation —
// false UAF, untyped error, audit drift across a rebuild — is an error.
func RunService(opts Options, progress func(string)) (*ServiceReport, error) {
	opts = opts.normalized()
	rep := &ServiceReport{}
	clients := 8
	perClient := maxi(int(1500*opts.Scale), 150)

	for _, shards := range serviceShardCounts() {
		if progress != nil {
			progress(fmt.Sprintf("service scaling shards=%d", shards))
		}
		svc, err := service.New(service.Config{
			Shards:    shards,
			HeapBytes: opts.HeapBytes,
			Audit:     opts.Audit,
			Seed:      uint64(opts.Seed),
		})
		if err != nil {
			return nil, fmt.Errorf("service shards=%d: %w", shards, err)
		}
		start := time.Now()
		load := service.RunLoad(svc, service.LoadConfig{
			Clients:  clients,
			Requests: perClient,
			Seed:     uint64(opts.Seed)*0x9e3779b9 + uint64(shards),
		})
		elapsed := time.Since(start)
		violations := append(load.Violations(), svc.Violations()...)
		svc.Close()
		if len(violations) > 0 {
			return nil, fmt.Errorf("service shards=%d: %s", shards, violations[0])
		}
		row := ServiceScaleRow{
			Shards:   shards,
			Clients:  clients,
			Requests: load.Issued,
			Seconds:  elapsed.Seconds(),
			Degraded: load.Degraded,
			Detected: load.Detected,
		}
		if elapsed > 0 {
			row.Throughput = float64(load.Issued) / elapsed.Seconds()
		}
		rep.Scaling = append(rep.Scaling, row)
	}

	for _, kills := range []int{1, 2, 4} {
		if progress != nil {
			progress(fmt.Sprintf("service failover kills=%d", kills))
		}
		row, err := runServiceFailover(opts, clients, kills)
		if err != nil {
			return nil, err
		}
		rep.Failover = append(rep.Failover, row)
	}
	return rep, nil
}

// runServiceFailover is one kill-count cell: a 4-shard audited service
// with the cold tier armed, continuous load, kills spread round-robin
// across the shards, each waited to a completed failover.
func runServiceFailover(opts Options, clients, kills int) (ServiceFailoverRow, error) {
	row := ServiceFailoverRow{Kills: kills}
	dir, err := os.MkdirTemp("", "dangsan-bench-service")
	if err != nil {
		return row, fmt.Errorf("service failover: %w", err)
	}
	defer os.RemoveAll(dir)
	const shards = 4
	svc, err := service.New(service.Config{
		Shards:         shards,
		HeapBytes:      opts.HeapBytes,
		Audit:          true,
		ColdSpillBytes: pointerlog.MinColdSpillBytes,
		ColdDir:        dir,
		Seed:           uint64(opts.Seed),
	})
	if err != nil {
		return row, fmt.Errorf("service failover kills=%d: %w", kills, err)
	}
	defer svc.Close()

	stop := make(chan struct{})
	loadCh := make(chan service.LoadResult, 1)
	go func() {
		loadCh <- service.RunLoad(svc, service.LoadConfig{
			Clients:     clients,
			Seed:        uint64(opts.Seed)*0x2545f491 + uint64(kills),
			HeavyFrac:   0.05,
			HeavyStores: 300,
			Stop:        stop,
		})
	}()
	// Let the load build worker state worth rebuilding before the first
	// kill, then kill round-robin, each to a completed failover.
	time.Sleep(20 * time.Millisecond)
	for k := 0; k < kills; k++ {
		shard := k % shards
		before := svc.Counters().Failovers
		if err := svc.Disrupt(shard, "kill"); err != nil {
			close(stop)
			<-loadCh
			return row, fmt.Errorf("service failover kills=%d: %w", kills, err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for svc.Counters().Failovers <= before {
			if time.Now().After(deadline) {
				close(stop)
				<-loadCh
				return row, fmt.Errorf("service failover kills=%d: shard %d never recovered", kills, shard)
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	load := <-loadCh
	if v := append(load.Violations(), svc.Violations()...); len(v) > 0 {
		return row, fmt.Errorf("service failover kills=%d: %s", kills, v[0])
	}
	c := svc.Counters()
	row.Failovers = c.Failovers
	row.Issued = load.Issued
	row.Degraded = load.Degraded
	if load.Issued > 0 {
		row.DegradedFrac = float64(load.Degraded) / float64(load.Issued)
	}
	row.Replayed = c.ReplayedObjects
	row.RecoveredLocs = c.RecoveredLocs
	var sum, max time.Duration
	times := svc.RecoveryTimes()
	for _, d := range times {
		sum += d
		if d > max {
			max = d
		}
	}
	if len(times) > 0 {
		row.RecoveryMeanMs = float64(sum.Microseconds()) / float64(len(times)) / 1000
		row.RecoveryMaxMs = float64(max.Microseconds()) / 1000
	}
	return row, nil
}
