package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// tw is a minimal aligned-column writer.
type tw struct {
	rows [][]string
}

func (t *tw) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *tw) String() string {
	widths := map[int]int{}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	for _, r := range t.rows {
		for i, c := range r {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func ratio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

func mib(b uint64) string {
	return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
}

// FormatFig9 renders the SPEC run-time overhead table (Figure 9):
// per-benchmark slowdown factors normalized to the baseline, plus geometric
// means overall and over the subsets the paper uses to compare against
// DangNULL and FreeSentry.
func FormatFig9(rows []SPECRow) string {
	var t tw
	t.row("benchmark", "baseline(s)", "dangsan", "dangnull", "freesentry")
	var gmDS, gmDN, gmFS []float64
	var gmDSonDN, gmDSonFS []float64
	for _, r := range rows {
		base := r.ByKind[Baseline].Seconds
		cells := []string{r.Benchmark, fmt.Sprintf("%.3f", base)}
		for _, k := range []Kind{DangSan, DangNULL, FreeSentry} {
			m, ok := r.ByKind[k]
			if !ok {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, ratio(m.Seconds, base))
			f := m.Seconds / base
			switch k {
			case DangSan:
				gmDS = append(gmDS, f)
			case DangNULL:
				gmDN = append(gmDN, f)
				gmDSonDN = append(gmDSonDN, r.ByKind[DangSan].Seconds/base)
			case FreeSentry:
				gmFS = append(gmFS, f)
				gmDSonFS = append(gmDSonFS, r.ByKind[DangSan].Seconds/base)
			}
		}
		t.row(cells...)
	}
	out := "Figure 9: run-time overhead on SPEC CPU2006 analogs (normalized to baseline)\n" + t.String()
	out += fmt.Sprintf("geomean dangsan    %.2fx  (paper: 1.41x)\n", Geomean(gmDS))
	if len(gmDN) > 0 {
		out += fmt.Sprintf("geomean dangnull   %.2fx  vs dangsan %.2fx on same set (paper: 1.55x vs 1.22x)\n",
			Geomean(gmDN), Geomean(gmDSonDN))
	}
	if len(gmFS) > 0 {
		out += fmt.Sprintf("geomean freesentry %.2fx  vs dangsan %.2fx on same set (paper: 1.30x vs 1.23x)\n",
			Geomean(gmFS), Geomean(gmDSonFS))
	}
	return out
}

// FormatFig11 renders the SPEC memory overhead table (Figure 11).
func FormatFig11(rows []SPECRow) string {
	var t tw
	t.row("benchmark", "baseline", "dangsan", "overhead", "dangnull")
	var gm []float64
	for _, r := range rows {
		base := r.ByKind[Baseline].PeakFootprint
		ds := r.ByKind[DangSan].PeakFootprint
		cells := []string{r.Benchmark, mib(base), mib(ds), ratio(float64(ds), float64(base))}
		if m, ok := r.ByKind[DangNULL]; ok {
			cells = append(cells, ratio(float64(m.PeakFootprint), float64(base)))
		} else {
			cells = append(cells, "-")
		}
		t.row(cells...)
		if base > 0 {
			gm = append(gm, float64(ds)/float64(base))
		}
	}
	return "Figure 11: memory overhead on SPEC CPU2006 analogs (peak RSS + metadata)\n" +
		t.String() +
		fmt.Sprintf("geomean dangsan %.2fx  (paper: 2.4x)\n", Geomean(gm))
}

// FormatFig10 renders the scalability series (Figure 10): run time per
// thread count, with the DangSan overhead factor per point.
func FormatFig10(rows []ScalabilityRow) string {
	var sb strings.Builder
	sb.WriteString("Figure 10: scalability on PARSEC and SPLASH-2X analogs (seconds; overhead vs baseline)\n")
	var perThreadOverheads map[int][]float64 = map[int][]float64{}
	for _, r := range rows {
		var t tw
		header := []string{r.Benchmark, "baseline(s)", "dangsan(s)", "overhead", "dangnull(s)"}
		t.row(header...)
		for _, c := range r.Cells {
			base := c.ByKind[Baseline].Seconds
			ds := c.ByKind[DangSan].Seconds
			cells := []string{
				fmt.Sprintf("%d threads", c.Threads),
				fmt.Sprintf("%.3f", base),
				fmt.Sprintf("%.3f", ds),
				ratio(ds, base),
			}
			if m, ok := c.ByKind[DangNULL]; ok {
				cells = append(cells, fmt.Sprintf("%.3f", m.Seconds))
			} else {
				cells = append(cells, "-")
			}
			t.row(cells...)
			if base > 0 {
				perThreadOverheads[c.Threads] = append(perThreadOverheads[c.Threads], ds/base)
			}
		}
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	var t tw
	t.row("threads", "geomean dangsan overhead")
	for _, c := range rows[0].Cells {
		ov := Geomean(perThreadOverheads[c.Threads])
		t.row(fmt.Sprintf("%d", c.Threads), fmt.Sprintf("%.2fx", ov))
	}
	sb.WriteString("summary (paper: 1.12x @1T, 1.17-1.21x @2-16T, 1.30x @32T, 1.34x @64T):\n")
	sb.WriteString(t.String())
	return sb.String()
}

// FormatFig12 renders the scalability memory series (Figure 12).
func FormatFig12(rows []ScalabilityRow) string {
	var sb strings.Builder
	sb.WriteString("Figure 12: memory usage on PARSEC and SPLASH-2X analogs (peak RSS + metadata)\n")
	perThread := map[int][]float64{}
	for _, r := range rows {
		var t tw
		t.row(r.Benchmark, "baseline", "dangsan", "overhead")
		for _, c := range r.Cells {
			base := c.ByKind[Baseline].PeakFootprint
			ds := c.ByKind[DangSan].PeakFootprint
			t.row(fmt.Sprintf("%d threads", c.Threads), mib(base), mib(ds),
				ratio(float64(ds), float64(base)))
			if base > 0 {
				perThread[c.Threads] = append(perThread[c.Threads], float64(ds)/float64(base))
			}
		}
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	var t tw
	t.row("threads", "geomean dangsan memory overhead")
	for _, c := range rows[0].Cells {
		t.row(fmt.Sprintf("%d", c.Threads), fmt.Sprintf("%.2fx", Geomean(perThread[c.Threads])))
	}
	sb.WriteString("summary (paper: 1.56x @1T growing to 1.67x @16T, then level):\n")
	sb.WriteString(t.String())
	return sb.String()
}

// FormatServers renders the web-server throughput and memory table
// (§8.2/§8.3).
func FormatServers(rows []ServerRow) string {
	var t tw
	t.row("server", "baseline req/s", "dangsan req/s", "slowdown", "mem baseline", "mem dangsan", "mem overhead")
	for _, r := range rows {
		base := r.ByKind[Baseline]
		ds := r.ByKind[DangSan]
		baseRPS := float64(r.Requests) / base.Seconds
		dsRPS := float64(r.Requests) / ds.Seconds
		t.row(r.Server,
			fmt.Sprintf("%.0f", baseRPS),
			fmt.Sprintf("%.0f", dsRPS),
			fmt.Sprintf("%.0f%%", (1-dsRPS/baseRPS)*100),
			mib(base.PeakFootprint), mib(ds.PeakFootprint),
			ratio(float64(ds.PeakFootprint), float64(base.PeakFootprint)))
	}
	return "Web servers (paper: apache -21% 4.5x mem, nginx -30% 1.8x mem, cherokee ~0% 1.1x mem)\n" + t.String()
}

// FormatTable1 renders the statistics table.
func FormatTable1(rows []Table1Row) string {
	var t tw
	t.row("benchmark", "#obj", "#hashtable", "#ptrs", "#inval", "#stale", "#dup", "dangnull #ptrs", "dangnull #inval")
	for _, r := range rows {
		s := r.DangSan
		t.row(r.Benchmark,
			fmt.Sprintf("%d", s.ObjectsTracked),
			fmt.Sprintf("%d", s.HashTables),
			fmt.Sprintf("%d", s.Registered),
			fmt.Sprintf("%d", s.Invalidated),
			fmt.Sprintf("%d", s.Stale),
			fmt.Sprintf("%d", s.Duplicates),
			fmt.Sprintf("%d", r.DangNULLPtrs),
			fmt.Sprintf("%d", r.DangNULLInval))
	}
	return "Table 1: pointer-tracking statistics on the SPEC analogs (scaled counts)\n" + t.String()
}

// FormatLookback renders the lookback sweep.
func FormatLookback(points []LookbackPoint) string {
	var t tw
	t.row("lookback", "seconds", "log bytes")
	for _, p := range points {
		t.row(fmt.Sprintf("%d", p.Lookback), fmt.Sprintf("%.3f", p.Seconds), mib(p.LogBytes))
	}
	return "Ablation: lookback window on the perlbench analog (paper §4.4: flat 1-4, memory grows without lookback)\n" + t.String()
}

// FormatCompression renders the compression ablation.
func FormatCompression(points []CompressionPoint) string {
	var t tw
	t.row("compression", "seconds", "log bytes", "entries folded")
	for _, p := range points {
		t.row(fmt.Sprintf("%v", p.Compression), fmt.Sprintf("%.3f", p.Seconds),
			mib(p.LogBytes), fmt.Sprintf("%d", p.Compressed))
	}
	return "Ablation: pointer compression on an adjacent-slot fill workload (paper §6: up to 3x log-space saving)\n" + t.String()
}

// FormatShadow renders the shadow-scheme comparison.
func FormatShadow(points []ShadowPoint) string {
	var t tw
	t.row("object size", "fixed-ratio meta", "variable meta", "fixed create", "variable create")
	for _, p := range points {
		t.row(fmt.Sprintf("%dKiB", p.ObjectBytes>>10),
			mib(p.FixedBytes), mib(p.VariableBytes),
			fmt.Sprintf("%.0fns", p.FixedNs), fmt.Sprintf("%.0fns", p.VariableNs))
	}
	return "Ablation: constant vs variable compression-ratio shadow (paper §4.3: constant ratio pays O(size) init and ~1:1 metadata)\n" + t.String()
}

// FormatFreeLatency renders the free-path latency comparison (epoch
// quarantine vs inline invalidation).
func FormatFreeLatency(rows []FreeLatencyRow) string {
	var t tw
	t.row("free path", "req/s", "frees", "mean ns", "p50 ns", "p99 ns", "max ns", "epochs", "batch", "overflow")
	for _, r := range rows {
		rps := "-"
		if r.Seconds > 0 {
			rps = fmt.Sprintf("%.0f", float64(r.Requests)/r.Seconds)
		}
		t.row(r.Config, rps,
			fmt.Sprintf("%d", r.FreeCount),
			fmt.Sprintf("%.0f", r.FreeMeanNs),
			fmt.Sprintf("%d", r.FreeP50Ns),
			fmt.Sprintf("%d", r.FreeP99Ns),
			fmt.Sprintf("%d", r.FreeMaxNs),
			fmt.Sprintf("%d", r.Epochs),
			fmt.Sprintf("%.1f", r.BatchMean),
			fmt.Sprintf("%d", r.OverflowDrains))
	}
	return "Free-path latency on the apache server analog (log2-bucket quantiles)\n" + t.String()
}

// FormatTiered renders the tiered-log sweep: resident log bytes against
// free-path tail latency as the spill threshold tightens.
func FormatTiered(rows []TieredRow) string {
	var t tw
	t.row("spill", "resident", "spilled", "spills", "segs", "disk",
		"compact", "spill p99", "free p99", "free max", "free mean")
	var off uint64
	for _, r := range rows {
		if r.SpillBytes == 0 {
			off = r.ResidentLogBytes
		}
		resident := mib(r.ResidentLogBytes)
		if off > 0 && r.SpillBytes != 0 {
			resident += fmt.Sprintf(" (%.0f%%)", 100*float64(r.ResidentLogBytes)/float64(off))
		}
		t.row(r.Config, resident, mib(r.SpilledLogBytes),
			fmt.Sprintf("%d", r.Spills),
			fmt.Sprintf("%d", r.ColdSegments),
			mib(uint64(r.ColdDiskBytes)),
			fmt.Sprintf("%d", r.Compactions),
			fmt.Sprintf("%dns", r.SpillP99Ns),
			fmt.Sprintf("%dns", r.FreeP99Ns),
			fmt.Sprintf("%dns", r.FreeMaxNs),
			fmt.Sprintf("%.0fns", r.FreeMeanNs))
	}
	return "Tiered pointer logs: RAM ceiling vs free-path latency (hash-fallback workload)\n" + t.String()
}

// FormatService renders the supervised-service experiments: throughput as
// the shard count grows, then failover recovery time and the degraded
// fraction under worker kills.
func FormatService(rep *ServiceReport) string {
	var t tw
	t.row("shards", "clients", "requests", "seconds", "ops/s", "degraded", "detected")
	for _, r := range rep.Scaling {
		t.row(fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Clients),
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%.2f", r.Seconds),
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%d", r.Degraded),
			fmt.Sprintf("%d", r.Detected))
	}
	var f tw
	f.row("kills", "failovers", "recovery mean", "recovery max", "degraded", "replayed", "recovered locs")
	for _, r := range rep.Failover {
		f.row(fmt.Sprintf("%d", r.Kills),
			fmt.Sprintf("%d", r.Failovers),
			fmt.Sprintf("%.2fms", r.RecoveryMeanMs),
			fmt.Sprintf("%.2fms", r.RecoveryMaxMs),
			fmt.Sprintf("%.2f%%", 100*r.DegradedFrac),
			fmt.Sprintf("%d", r.Replayed),
			fmt.Sprintf("%d", r.RecoveredLocs))
	}
	return "Supervised sharded service: throughput vs shard count\n" + t.String() +
		"\nShard failover under live load (4 shards, audit armed, cold tier on)\n" + f.String()
}

// FormatWire renders the transport comparison: the same load over
// in-process channels vs unix-socket vs loopback-TCP worker processes,
// then SIGKILL recovery latency per transport.
func FormatWire(rep *WireReport) string {
	var t tw
	t.row("transport", "shards", "clients", "requests", "seconds", "ops/s", "degraded", "detected")
	for _, r := range rep.Throughput {
		t.row(r.Transport,
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Clients),
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%.2f", r.Seconds),
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%d", r.Degraded),
			fmt.Sprintf("%d", r.Detected))
	}
	var f tw
	f.row("transport", "sigkills", "failovers", "recovery mean", "recovery max", "replayed", "recovered locs")
	for _, r := range rep.Failover {
		f.row(r.Transport,
			fmt.Sprintf("%d", r.SigKills),
			fmt.Sprintf("%d", r.Failovers),
			fmt.Sprintf("%.2fms", r.RecoveryMeanMs),
			fmt.Sprintf("%.2fms", r.RecoveryMaxMs),
			fmt.Sprintf("%d", r.Replayed),
			fmt.Sprintf("%d", r.RecoveredLocs))
	}
	return "Wire transports: the same service load over chan vs unix vs tcp workers\n" + t.String() +
		"\nProcess-death failover (SIGKILL under live load, audit armed, cold tier on)\n" + f.String()
}

// BenchJSON accumulates experiment results for the machine-readable
// BENCH_<n>.json artifact: each experiment that runs adds its row structs
// under a stable name, and Write emits one indented JSON document. The
// schema is a flat result map so re-anchor tooling can diff runs without
// knowing every experiment.
type BenchJSON struct {
	Schema  int            `json:"schema"`
	Results map[string]any `json:"results"`
}

// NewBenchJSON creates an empty collector (schema version 1).
func NewBenchJSON() *BenchJSON {
	return &BenchJSON{Schema: 1, Results: make(map[string]any)}
}

// Add records one experiment's result rows under name, overwriting any
// earlier entry with the same name.
func (b *BenchJSON) Add(name string, v any) {
	if b == nil {
		return
	}
	b.Results[name] = v
}

// Write marshals the collected results to path ("-" for stdout).
func (b *BenchJSON) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// FormatMapper renders the mapper comparison.
func FormatMapper(points []MapperPoint) string {
	var t tw
	t.row("live objects", "shadow ns/lookup", "rbtree ns/lookup", "tree/shadow")
	for _, p := range points {
		t.row(fmt.Sprintf("%d", p.Objects),
			fmt.Sprintf("%.1f", p.ShadowNs),
			fmt.Sprintf("%.1f", p.TreeNs),
			fmt.Sprintf("%.1fx", p.TreeNs/p.ShadowNs))
	}
	return "Ablation: pointer-to-object mapper (paper §4.3: trees degrade with object count, shadow stays constant)\n" + t.String()
}
