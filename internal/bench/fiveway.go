package bench

import (
	"fmt"

	"dangsan/internal/detectors"
	"dangsan/internal/detectors/camp"
	"dangsan/internal/detectors/xtag"
	"dangsan/internal/faultinject"
	"dangsan/internal/instrument"
	"dangsan/internal/interp"
	"dangsan/internal/ir/opt"
	"dangsan/internal/irgen"
	"dangsan/internal/irparse"
	"dangsan/internal/proc"
	"dangsan/internal/workloads"
)

// CheckPathStats are the check-path counters of a checked-dereference
// backend after one benign run. Objects is xtag's tagged / camp's tracked
// count, Checks the dereference checks actually performed, Faults the traps
// raised (must be 0 on a benign workload — RunFiveWay fails otherwise), and
// Degraded the fail-open coverage losses.
type CheckPathStats struct {
	Objects    uint64 `json:"objects"`
	Checks     uint64 `json:"checks"`
	Faults     uint64 `json:"faults"`
	Tombstones uint64 `json:"tombstones,omitempty"` // camp only
	Degraded   uint64 `json:"degraded"`
}

// FiveWayRow is one SPEC analog's measurements across the full five-way
// detector matrix, with the checked-dereference backends' dynamic check
// counters alongside the timings.
type FiveWayRow struct {
	Benchmark string           `json:"benchmark"`
	Seconds   map[Kind]float64 `json:"seconds"`
	Footprint map[Kind]uint64  `json:"peak_footprint"`
	XTag      CheckPathStats   `json:"xtag"`
	CAMP      CheckPathStats   `json:"camp"`
}

// ElisionStats summarize the camp check-elision ablation over a seed sweep
// of generated programs: the static pass's emitted-vs-elided split, and the
// dynamic checks camp actually performed running each program with elision
// off and on. DynamicAvoided = DynamicChecks - DynamicChecksOpt is the
// run-time work the static proof saved.
type ElisionStats struct {
	Seeds int `json:"seeds"`
	// Static counts, from instrument.Pass with ElideDerefChecks on.
	DerefChecks  int `json:"deref_checks_emitted"`
	ElidedChecks int `json:"deref_checks_elided"`
	// Dynamic camp check counts: unoptimized vs elision-optimized runs.
	DynamicChecks    uint64 `json:"dynamic_checks"`
	DynamicChecksOpt uint64 `json:"dynamic_checks_opt"`
}

// FiveWayReport is the five-way ablation artifact: overhead rows per SPEC
// analog plus the camp elision sweep.
type FiveWayReport struct {
	Rows    []FiveWayRow `json:"rows"`
	Elision ElisionStats `json:"elision"`
}

// RunFiveWay executes the five-way detector ablation: every SPEC analog
// under baseline, the three pointer-invalidation backends, and the two
// checked-dereference backends (xtag pointer tagging, camp range checks),
// then a seed sweep quantifying how many dereference checks camp's
// instrumentation elision proves away. Benign workloads must not trap:
// any xtag mismatch or camp fault fails the run.
func RunFiveWay(opts Options, progress func(string)) (*FiveWayReport, error) {
	opts = opts.normalized()
	rep := &FiveWayReport{}
	for _, prof := range workloads.SPECProfiles() {
		prof := scaleSpec(prof, opts.Scale)
		row := FiveWayRow{
			Benchmark: prof.Name,
			Seconds:   make(map[Kind]float64),
			Footprint: make(map[Kind]uint64),
		}
		for _, kind := range FiveWayKinds() {
			if progress != nil {
				progress(fmt.Sprintf("fiveway %s / %s", prof.Name, kind))
			}
			kind := kind
			// The workloads are deterministic, so the counters are identical
			// across repeats; keeping the last-built detector is enough even
			// though MeasureN reports the fastest repeat's timing.
			var last detectors.Detector
			m, err := MeasureN(opts,
				func(pl *faultinject.Plane) (detectors.Detector, error) {
					d, err := opts.NewDetector(kind, pl)
					last = d
					return d, err
				},
				func(p *proc.Process) error { return workloads.RunSPEC(p, prof, opts.Seed) })
			if err != nil {
				return nil, fmt.Errorf("fiveway %s/%s: %w", prof.Name, kind, err)
			}
			row.Seconds[kind] = m.Seconds
			row.Footprint[kind] = m.PeakFootprint
			switch d := last.(type) {
			case *xtag.Detector:
				tagged, checks, mismatches := d.Stats()
				deg, _ := d.Degraded()
				row.XTag = CheckPathStats{Objects: tagged, Checks: checks, Faults: mismatches, Degraded: deg}
				if mismatches != 0 {
					return nil, fmt.Errorf("fiveway %s: xtag reported %d tag mismatches on a benign workload", prof.Name, mismatches)
				}
			case *camp.Detector:
				tracked, checks, faults, tombstones := d.Stats()
				deg, _ := d.Degraded()
				row.CAMP = CheckPathStats{Objects: tracked, Checks: checks, Faults: faults, Tombstones: tombstones, Degraded: deg}
				if faults != 0 {
					return nil, fmt.Errorf("fiveway %s: camp reported %d freed-range faults on a benign workload", prof.Name, faults)
				}
			}
		}
		rep.Rows = append(rep.Rows, row)
	}

	el, err := runElisionSweep(opts, progress)
	if err != nil {
		return nil, err
	}
	rep.Elision = el
	return rep, nil
}

// runElisionSweep runs generated programs under camp twice — once with every
// load/store checked, once after the ElideDerefChecks proof — and counts the
// static and dynamic checks the elision removes. Outputs and traps must
// agree between the two runs (the programs are benign: no traps at all).
func runElisionSweep(opts Options, progress func(string)) (ElisionStats, error) {
	stats := ElisionStats{Seeds: maxi(int(50*opts.Scale), 10)}
	for i := 0; i < stats.Seeds; i++ {
		seed := opts.Seed*1000 + int64(i)
		if progress != nil && i%10 == 0 {
			progress(fmt.Sprintf("fiveway elision seed %d/%d", i, stats.Seeds))
		}
		prog := irgen.Generate(seed, irgen.Config{})
		for _, elide := range []bool{false, true} {
			m, err := irparse.Parse(prog.Source)
			if err != nil {
				return stats, fmt.Errorf("fiveway elision seed %d: parse: %w", seed, err)
			}
			if _, err := opt.Optimize(m); err != nil {
				return stats, fmt.Errorf("fiveway elision seed %d: optimize: %w", seed, err)
			}
			iopts := instrument.DefaultOptions()
			iopts.ElideDerefChecks = elide
			res, err := instrument.Pass(m, iopts)
			if err != nil {
				return stats, fmt.Errorf("fiveway elision seed %d: instrument: %w", seed, err)
			}
			det := camp.New()
			rt := interp.New(m, det, interp.Options{})
			r, err := rt.Run()
			if err != nil {
				return stats, fmt.Errorf("fiveway elision seed %d: run: %w", seed, err)
			}
			if r.Trap != nil {
				return stats, fmt.Errorf("fiveway elision seed %d (elide=%v): benign program trapped: %v", seed, elide, r.Trap)
			}
			_, checks, faults, _ := det.Stats()
			if faults != 0 {
				return stats, fmt.Errorf("fiveway elision seed %d (elide=%v): camp reported %d faults on a benign program", seed, elide, faults)
			}
			if elide {
				stats.DerefChecks += res.DerefChecks
				stats.ElidedChecks += res.ElidedChecks
				stats.DynamicChecksOpt += checks
			} else {
				stats.DynamicChecks += checks
			}
		}
	}
	return stats, nil
}

// FormatFiveWay renders the five-way ablation: per-benchmark slowdowns for
// all five detectors, the checked-dereference backends' dynamic counters,
// and the camp elision summary.
func FormatFiveWay(rep *FiveWayReport) string {
	var t tw
	t.row("benchmark", "baseline(s)", "dangsan", "dangnull", "freesentry", "xtag", "camp")
	gm := map[Kind][]float64{}
	for _, r := range rep.Rows {
		base := r.Seconds[Baseline]
		cells := []string{r.Benchmark, fmt.Sprintf("%.3f", base)}
		for _, k := range []Kind{DangSan, DangNULL, FreeSentry, XTag, CAMP} {
			s, ok := r.Seconds[k]
			if !ok {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, ratio(s, base))
			if base > 0 {
				gm[k] = append(gm[k], s/base)
			}
		}
		t.row(cells...)
	}
	out := "Five-way ablation: run-time overhead on SPEC analogs (normalized to baseline)\n" + t.String()
	for _, k := range []Kind{DangSan, DangNULL, FreeSentry, XTag, CAMP} {
		out += fmt.Sprintf("geomean %-10s %.2fx\n", k, Geomean(gm[k]))
	}

	var ct tw
	ct.row("benchmark", "xtag objs", "xtag checks", "camp objs", "camp checks", "camp tombstones", "degraded")
	for _, r := range rep.Rows {
		ct.row(r.Benchmark,
			fmt.Sprintf("%d", r.XTag.Objects),
			fmt.Sprintf("%d", r.XTag.Checks),
			fmt.Sprintf("%d", r.CAMP.Objects),
			fmt.Sprintf("%d", r.CAMP.Checks),
			fmt.Sprintf("%d", r.CAMP.Tombstones),
			fmt.Sprintf("%d", r.XTag.Degraded+r.CAMP.Degraded))
	}
	out += "\nChecked-dereference backends: dynamic check-path counters (benign runs; 0 faults required)\n" + ct.String()

	e := rep.Elision
	total := e.DerefChecks + e.ElidedChecks
	staticPct, dynPct := 0.0, 0.0
	if total > 0 {
		staticPct = 100 * float64(e.ElidedChecks) / float64(total)
	}
	if e.DynamicChecks > 0 {
		dynPct = 100 * float64(e.DynamicChecks-e.DynamicChecksOpt) / float64(e.DynamicChecks)
	}
	out += fmt.Sprintf("\nCAMP check elision over %d generated programs: %d/%d static checks proved safe (%.1f%%), dynamic checks %d -> %d (-%.1f%%)\n",
		e.Seeds, e.ElidedChecks, total, staticPct, e.DynamicChecks, e.DynamicChecksOpt, dynPct)
	return out
}
