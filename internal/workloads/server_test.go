package workloads

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/faultinject"
	"dangsan/internal/proc"
	"dangsan/internal/tcmalloc"
)

// TestServerMidRequestOOMDoesNotLeak is the regression test for the
// serverWorker buffer leak: a request whose Nth buffer allocation fails
// must free the N-1 buffers it already allocated before bailing out.
// The heap is sized so one request cannot fit — the worker necessarily
// fails mid-request — and afterwards the allocator must report zero live
// objects (conn and pool are covered by defers; the request buffers only
// by the failRequest path under test).
func TestServerMidRequestOOMDoesNotLeak(t *testing.T) {
	det := dangsan.New()
	p := proc.NewWithOptions(det, proc.Options{HeapBytes: 256 << 10})
	prof := ServerProfile{
		Name:                "leaktest",
		AllocsPerRequest:    64, // 64 × 8 KiB = 512 KiB > the 256 KiB heap
		PtrStoresPerRequest: 4,
		ComputePerRequest:   1,
		BufferMin:           8192,
		BufferMax:           8192,
	}
	err := RunServer(p, prof, 1, 4, 1)
	var oom *tcmalloc.OutOfMemoryError
	if !errors.As(err, &oom) {
		t.Fatalf("expected mid-request OutOfMemoryError, got %v", err)
	}
	if live := p.Allocator().Stats().LiveObjects; live != 0 {
		t.Fatalf("worker leaked %d objects on the mid-request failure path", live)
	}
}

// TestServerSurvivesTransientPressure: with a bounded injection budget the
// allocator failures are transient, and mallocRobust's retry (with
// ReleaseFreeMemory and backoff) must carry every request through — the
// run completes with no error even though failures were injected.
func TestServerSurvivesTransientPressure(t *testing.T) {
	plane := faultinject.New(11)
	plane.EnableAll(0.05, 24)
	det := dangsan.NewWithOptions(dangsan.Options{Faults: plane})
	p := proc.NewWithOptions(det, proc.Options{HeapBytes: 8 << 20, Faults: plane})
	prof, err := ServerProfileByName("apache")
	if err != nil {
		t.Fatal(err)
	}
	if err := RunServer(p, prof, 2, 200, 11); err != nil {
		t.Fatalf("server did not survive transient pressure: %v", err)
	}
	if plane.TotalInjected() == 0 {
		t.Fatal("no failures injected; the test exercised nothing")
	}
	if live := p.Allocator().Stats().LiveObjects; live != 0 {
		t.Fatalf("%d objects leaked across the pressured run", live)
	}
}

// TestServerPersistentOOMGivesUpWithTypedError: when memory pressure is
// NOT transient — every allocator path fails, reclaim buys nothing — the
// retry loop must give up promptly with the typed OutOfMemoryError. This
// is the regression test for the retry wall-time deadline: the loop is
// bounded by mallocRetryDeadline, not merely by the attempt counter whose
// per-attempt cost (quarantine drain + page release + backoff) is
// unbounded.
func TestServerPersistentOOMGivesUpWithTypedError(t *testing.T) {
	plane := faultinject.New(7)
	plane.EnableAll(1.0, -1) // every injection site, unlimited budget
	det := dangsan.New()
	p := proc.NewWithOptions(det, proc.Options{HeapBytes: 1 << 20, Faults: plane})
	prof, err := ServerProfileByName("apache")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	runErr := RunServer(p, prof, 2, 50, 7)
	elapsed := time.Since(start)
	var oom *tcmalloc.OutOfMemoryError
	if !errors.As(runErr, &oom) {
		t.Fatalf("persistent OOM surfaced as %v, want typed OutOfMemoryError", runErr)
	}
	// Two workers × one failed allocation each, deadline-capped at 5ms of
	// retrying apiece. Seconds here would mean the loop is spinning.
	if elapsed > 3*time.Second {
		t.Fatalf("worker spent %v in the retry loop under persistent OOM", elapsed)
	}
	if plane.TotalInjected() == 0 {
		t.Fatal("no failures injected; the test exercised nothing")
	}
}

// panicDetector panics inside OnAlloc once a threshold of allocations is
// reached — a stand-in for an unexpected detector bug inside a worker.
// OnAlloc is called concurrently from every server worker, so the counter
// must be atomic.
type panicDetector struct {
	dangsan.Detector
	n       atomic.Int64
	panicAt int64
}

func (d *panicDetector) OnAlloc(base, size, align uint64) {
	if d.n.Add(1) == d.panicAt {
		panic("injected detector panic")
	}
	d.Detector.OnAlloc(base, size, align)
}

// TestServerWorkerPanicRecovered: a panic inside a worker must surface as
// that worker's error — the run terminates instead of crashing the test
// process or hanging the request producer on a full queue.
func TestServerWorkerPanicRecovered(t *testing.T) {
	det := &panicDetector{Detector: *dangsan.New(), panicAt: 40}
	p := proc.New(det)
	prof, err := ServerProfileByName("apache")
	if err != nil {
		t.Fatal(err)
	}
	err = RunServer(p, prof, 2, 500, 3)
	if err == nil {
		t.Fatal("expected the injected panic to surface as an error")
	}
	if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "injected detector panic") {
		t.Fatalf("panic not attributed: %v", err)
	}
}
