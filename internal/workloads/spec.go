// Package workloads provides the benchmark programs of the paper's
// evaluation, rebuilt as synthetic generators over the simulated process
// runtime: single-threaded SPEC CPU2006 analogs (Figures 9/11 and Table 1),
// multithreaded PARSEC/SPLASH-2X analogs (Figures 10/12), web-server
// workloads (§8.2/§8.3) and the exploit scenarios of §8.1.
//
// The detectors only observe a stream of allocation, pointer-store and free
// events, so each SPEC analog reproduces the statistical shape of its
// benchmark's stream from the paper's Table 1: pointer stores per object,
// the duplicate-store rate (drives the lookback and the hash-table
// fallback), the stale rate (locations overwritten before free), the
// fraction of hot objects (drives hash-table creation), and the number of
// concurrently live objects (drives memory overhead). Absolute counts are
// scaled down (roughly 1000x fewer objects, 20000x fewer stores) so that
// the whole suite runs in seconds; EXPERIMENTS.md records the scaling.
package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"dangsan/internal/proc"
)

// SPECProfile parameterizes one single-threaded benchmark analog.
type SPECProfile struct {
	// Name is the SPEC benchmark this profile is calibrated to.
	Name string
	// Objects is the (scaled) number of heap objects allocated over the run.
	Objects int
	// TotalStores is the (scaled) number of pointer stores.
	TotalStores int
	// DupRate is the probability that a store re-targets the most recent
	// location (Table 1 "# dup" / "# ptrs").
	DupRate float64
	// StaleRate is the probability that a store reuses a location already
	// holding a pointer to an older live object, making that entry stale
	// (Table 1 "# stale" / "# ptrs").
	StaleRate float64
	// HashFraction is the fraction of objects that receive enough distinct
	// pointer locations to overflow into the hash table (Table 1
	// "# hashtable" / "# obj alloc").
	HashFraction float64
	// LiveWindow is the number of objects kept live concurrently.
	LiveWindow int
	// SizeMin and SizeMax bound the allocation size distribution
	// (log-uniform).
	SizeMin, SizeMax uint64
	// ComputeOps is the number of non-pointer memory operations, modelling
	// the benchmark's CPU work. Benchmarks with little pointer traffic
	// (sjeng, lbm, libquantum) are dominated by this and show near-zero
	// overhead, as in the paper.
	ComputeOps int
}

// SPECProfiles returns the 19 C/C++ SPEC CPU2006 analogs of Figure 9 /
// Table 1, in the paper's order.
func SPECProfiles() []SPECProfile {
	return []SPECProfile{
		{Name: "400.perlbench", Objects: 17500, TotalStores: 1_200_000, DupRate: 0.78, StaleRate: 0.0013, HashFraction: 0.0011, LiveWindow: 4000, SizeMin: 16, SizeMax: 512, ComputeOps: 200_000},
		{Name: "401.bzip2", Objects: 258, TotalStores: 220_000, DupRate: 0.85, StaleRate: 0.00004, HashFraction: 0, LiveWindow: 32, SizeMin: 4096, SizeMax: 262144, ComputeOps: 1_500_000},
		{Name: "403.gcc", Objects: 15000, TotalStores: 1_000_000, DupRate: 0.94, StaleRate: 0.015, HashFraction: 0.019, LiveWindow: 3000, SizeMin: 16, SizeMax: 2048, ComputeOps: 300_000},
		{Name: "429.mcf", Objects: 20, TotalStores: 800_000, DupRate: 0.99, StaleRate: 0.0073, HashFraction: 0.15, LiveWindow: 20, SizeMin: 4096, SizeMax: 524288, ComputeOps: 400_000},
		{Name: "433.milc", Objects: 653, TotalStores: 600_000, DupRate: 0.62, StaleRate: 0.378, HashFraction: 0.9, LiveWindow: 64, SizeMin: 1024, SizeMax: 65536, ComputeOps: 900_000},
		{Name: "444.namd", Objects: 1339, TotalStores: 300_000, DupRate: 0.63, StaleRate: 0.0007, HashFraction: 0, LiveWindow: 128, SizeMin: 512, SizeMax: 32768, ComputeOps: 2_000_000},
		{Name: "445.gobmk", Objects: 6000, TotalStores: 600_000, DupRate: 0.98, StaleRate: 0.00008, HashFraction: 0, LiveWindow: 512, SizeMin: 16, SizeMax: 1024, ComputeOps: 1_200_000},
		{Name: "447.dealII", Objects: 50000, TotalStores: 40_000, DupRate: 0.036, StaleRate: 0.034, HashFraction: 0, LiveWindow: 8000, SizeMin: 16, SizeMax: 512, ComputeOps: 600_000},
		{Name: "450.soplex", Objects: 2360, TotalStores: 800_000, DupRate: 0.94, StaleRate: 0.054, HashFraction: 0.076, LiveWindow: 256, SizeMin: 256, SizeMax: 65536, ComputeOps: 400_000},
		{Name: "453.povray", Objects: 10000, TotalStores: 1_000_000, DupRate: 0.95, StaleRate: 0.0003, HashFraction: 0.0001, LiveWindow: 1000, SizeMin: 16, SizeMax: 256, ComputeOps: 500_000},
		{Name: "456.hmmer", Objects: 10000, TotalStores: 16_000, DupRate: 0.53, StaleRate: 0.026, HashFraction: 0, LiveWindow: 512, SizeMin: 32, SizeMax: 4096, ComputeOps: 2_500_000},
		{Name: "458.sjeng", Objects: 20, TotalStores: 10, DupRate: 0, StaleRate: 0, HashFraction: 0, LiveWindow: 20, SizeMin: 4096, SizeMax: 65536, ComputeOps: 3_000_000},
		{Name: "462.libquantum", Objects: 164, TotalStores: 130, DupRate: 0.23, StaleRate: 0.37, HashFraction: 0, LiveWindow: 32, SizeMin: 1024, SizeMax: 131072, ComputeOps: 2_500_000},
		{Name: "464.h264ref", Objects: 5000, TotalStores: 300_000, DupRate: 0.47, StaleRate: 0.011, HashFraction: 0.0015, LiveWindow: 512, SizeMin: 1024, SizeMax: 65536, ComputeOps: 1_800_000},
		{Name: "470.lbm", Objects: 19, TotalStores: 6004, DupRate: 0.5, StaleRate: 0.0003, HashFraction: 0, LiveWindow: 19, SizeMin: 262144, SizeMax: 1048576, ComputeOps: 3_000_000},
		{Name: "471.omnetpp", Objects: 30000, TotalStores: 1_300_000, DupRate: 0.70, StaleRate: 0.26, HashFraction: 0.39, LiveWindow: 15000, SizeMin: 64, SizeMax: 1024, ComputeOps: 150_000},
		{Name: "473.astar", Objects: 4800, TotalStores: 1_000_000, DupRate: 0.90, StaleRate: 0.09, HashFraction: 0.043, LiveWindow: 1000, SizeMin: 64, SizeMax: 4096, ComputeOps: 500_000},
		{Name: "482.sphinx3", Objects: 14000, TotalStores: 400_000, DupRate: 0.93, StaleRate: 0.0016, HashFraction: 0.0002, LiveWindow: 2000, SizeMin: 32, SizeMax: 2048, ComputeOps: 900_000},
		{Name: "483.xalancbmk", Objects: 30000, TotalStores: 1_000_000, DupRate: 0.61, StaleRate: 0.066, HashFraction: 0.0025, LiveWindow: 8000, SizeMin: 16, SizeMax: 512, ComputeOps: 300_000},
	}
}

// SPECProfileByName returns the profile for a benchmark name ("403.gcc" or
// just "gcc").
func SPECProfileByName(name string) (SPECProfile, error) {
	for _, p := range SPECProfiles() {
		if p.Name == name || p.Name[4:] == name {
			return p, nil
		}
	}
	return SPECProfile{}, fmt.Errorf("workloads: unknown SPEC profile %q", name)
}

// hotStoreTarget is how many distinct locations a hot object receives:
// comfortably past the default hash-table threshold.
const hotStoreTarget = 192

// RunSPEC executes one SPEC analog on a fresh thread of p. Deterministic
// for a given seed.
func RunSPEC(p *proc.Process, prof SPECProfile, seed int64) error {
	th := p.NewThread()
	defer th.Exit()
	rng := rand.New(rand.NewSource(seed))

	// Location arenas. The fresh arena cycles far beyond the lookback so
	// fresh stores never read as duplicates; the stale pool is a smaller
	// region that later objects' stores overwrite, turning earlier entries
	// stale; hot arenas give hot objects enough distinct locations to
	// overflow their logs.
	// Half the locations live in globals, half inside a long-lived heap
	// array — real programs keep pointers in both, and the split exposes
	// DangNULL's heap-only tracking limitation in Table 1.
	const freshSlots = 1 << 14
	const stalePool = 1 << 10
	freshBase := p.AllocGlobal(8 * freshSlots / 2)
	heapArena, err := th.Malloc(8 * (freshSlots/2 + stalePool))
	if err != nil {
		return fmt.Errorf("%s: %w", prof.Name, err)
	}
	defer th.Free(heapArena)
	staleBase := heapArena + 8*freshSlots/2
	// Hot locations are spread across 256-byte regions so that pointer
	// compression cannot pack them and the log genuinely overflows, as
	// milc's and omnetpp's scattered pointer fields do.
	const hotStride = 264
	hotBase := p.AllocGlobal(hotStride * hotStoreTarget)
	computeBase := p.AllocGlobal(8 * 1024)
	// Fresh locations come in runs of 32 adjacent slots, alternating
	// between the global and heap arenas: programs fill nearby fields and
	// array elements together, which is the spatial locality pointer
	// compression exploits.
	freshLoc := func(i int) uint64 {
		run, off := i/32, i%32
		slot := uint64(run/2*32+off) * 8
		if run&1 == 0 {
			return freshBase + slot
		}
		return heapArena + slot
	}

	type liveObj struct {
		base, size uint64
	}
	live := make([]liveObj, 0, prof.LiveWindow+1)

	sizeFor := func() uint64 {
		if prof.SizeMax <= prof.SizeMin {
			return prof.SizeMin
		}
		// Log-uniform over [SizeMin, SizeMax].
		lo, hi := float64(prof.SizeMin), float64(prof.SizeMax)
		return uint64(lo * math.Pow(hi/lo, rng.Float64()))
	}

	hotEvery := 0
	if prof.HashFraction > 0 {
		hotEvery = int(1 / prof.HashFraction)
	}

	// Distribute stores across objects; hot objects take hotStoreTarget
	// each, the rest share the remainder evenly.
	hotObjects := 0
	if hotEvery > 0 {
		hotObjects = prof.Objects / hotEvery
	}
	coldStores := prof.TotalStores - hotObjects*hotStoreTarget
	if coldStores < 0 {
		coldStores = 0
	}
	coldPerObj, coldRem := 0, 0
	if n := prof.Objects - hotObjects; n > 0 {
		coldPerObj = coldStores / n
		coldRem = coldStores % n
	}
	computePerObj := prof.ComputeOps / max(prof.Objects, 1)

	freshIdx := 0
	lastLoc := uint64(0)

	doStore := func(obj liveObj) error {
		val := obj.base + uint64(rng.Int63n(int64(obj.size)))&^7
		var loc uint64
		switch {
		case lastLoc != 0 && rng.Float64() < prof.DupRate:
			loc = lastLoc
		case rng.Float64() < prof.StaleRate:
			loc = staleBase + uint64(rng.Intn(stalePool))*8
		default:
			loc = freshLoc(freshIdx)
			freshIdx = (freshIdx + 1) % freshSlots
		}
		lastLoc = loc
		if f := th.StorePtr(loc, val); f != nil {
			return f
		}
		return nil
	}

	for i := 0; i < prof.Objects; i++ {
		base, err := th.Malloc(sizeFor())
		if err != nil {
			return fmt.Errorf("%s: %w", prof.Name, err)
		}
		usable, _ := p.UsableSize(base)
		obj := liveObj{base, usable}

		if hotEvery > 0 && i%hotEvery == 0 {
			// Hot object: enough distinct locations to overflow the log,
			// then a second pass over the same locations — hot objects in
			// the paper's Table 1 see both many pointers and many
			// duplicates (milc: 62% duplicate stores).
			for s := 0; s < 2*hotStoreTarget; s++ {
				loc := hotBase + uint64(s%hotStoreTarget)*hotStride
				val := obj.base + uint64(rng.Int63n(int64(obj.size)))&^7
				if f := th.StorePtr(loc, val); f != nil {
					return f
				}
			}
		} else {
			// Distribute the remainder one extra store per leading object,
			// so profiles with fewer stores than objects (dealII, sjeng)
			// still store at their calibrated rate.
			n := coldPerObj
			if i < coldRem {
				n++
			}
			for s := 0; s < n; s++ {
				if err := doStore(obj); err != nil {
					return err
				}
			}
		}

		// Compute phase: integer loads/stores that detectors ignore.
		for c := 0; c < computePerObj; c++ {
			slot := computeBase + uint64(c&1023)*8
			v, f := th.Load(slot)
			if f != nil {
				return f
			}
			if f := th.StoreInt(slot, v+uint64(c)); f != nil {
				return f
			}
		}

		live = append(live, obj)
		if len(live) > prof.LiveWindow {
			victim := live[0]
			live = live[1:]
			if err := th.Free(victim.base); err != nil {
				return fmt.Errorf("%s: %w", prof.Name, err)
			}
		}
	}
	for _, obj := range live {
		if err := th.Free(obj.base); err != nil {
			return fmt.Errorf("%s: %w", prof.Name, err)
		}
	}
	return nil
}
