package workloads

import (
	"strings"
	"testing"

	"dangsan/internal/detectors"
	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/proc"
)

// The paper's §9 comparison of defense classes, as executable claims.

func TestQuarantineStopsNaiveUAF(t *testing.T) {
	p := proc.New(detectors.None{})
	p.EnableQuarantine(1 << 20) // 1 MiB quarantine
	out, err := HeapSpray(p, 4) // too few allocations to flush it
	if err != nil {
		t.Fatal(err)
	}
	if !out.Prevented {
		t.Fatalf("quarantine failed against naive reuse: %s", out.Detail)
	}
}

func TestHeapSprayDefeatsQuarantine(t *testing.T) {
	p := proc.New(detectors.None{})
	p.EnableQuarantine(1 << 20)
	out, err := HeapSpray(p, 2000) // ~8 MiB of spray flushes 1 MiB quarantine
	if err != nil {
		t.Fatal(err)
	}
	if out.Prevented {
		t.Fatalf("spray did not defeat the quarantine: %s", out.Detail)
	}
	if !strings.Contains(out.Detail, "attacker marker") {
		t.Fatalf("unexpected detail: %s", out.Detail)
	}
}

func TestDangSanStopsHeapSprayToo(t *testing.T) {
	// Pointer invalidation does not care about reuse at all: however hard
	// the attacker sprays, the dangling pointer is already dead.
	p := proc.New(dangsan.New())
	out, err := HeapSpray(p, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Prevented {
		t.Fatalf("dangsan failed: %s", out.Detail)
	}
	if !strings.Contains(out.Detail, "non-canonical") {
		t.Fatalf("expected a fault, got: %s", out.Detail)
	}
}

func TestQuarantineDoubleFreeDetection(t *testing.T) {
	p := proc.New(detectors.None{})
	p.EnableQuarantine(1 << 20)
	th := p.NewThread()
	obj, _ := th.Malloc(64)
	if err := th.Free(obj); err != nil {
		t.Fatal(err)
	}
	if err := th.Free(obj); err == nil {
		t.Fatal("double free while quarantined not detected")
	}
	if err := th.FlushQuarantine(); err != nil {
		t.Fatal(err)
	}
	if p.QuarantinedBytes() != 0 {
		t.Fatal("quarantine not empty after flush")
	}
	// The object is genuinely free now: reallocatable.
	if _, err := th.Malloc(64); err != nil {
		t.Fatal(err)
	}
}
