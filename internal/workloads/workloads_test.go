package workloads

import (
	"strings"
	"testing"
	"time"

	"dangsan/internal/detectors"
	"dangsan/internal/detectors/dangnull"
	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/detectors/freesentry"
	"dangsan/internal/proc"
)

// small returns a scaled-down copy of a SPEC profile for fast tests.
func small(p SPECProfile) SPECProfile {
	p.Objects = min(p.Objects, 400)
	p.TotalStores = min(p.TotalStores, 20000)
	p.ComputeOps = min(p.ComputeOps, 5000)
	p.LiveWindow = min(p.LiveWindow, 100)
	return p
}

func TestSPECProfilesComplete(t *testing.T) {
	profs := SPECProfiles()
	if len(profs) != 19 {
		t.Fatalf("got %d SPEC profiles, want the paper's 19", len(profs))
	}
	seen := map[string]bool{}
	for _, p := range profs {
		if seen[p.Name] {
			t.Fatalf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
		if p.Objects <= 0 || p.SizeMin == 0 || p.SizeMax < p.SizeMin || p.LiveWindow <= 0 {
			t.Errorf("%s: degenerate profile %+v", p.Name, p)
		}
		if p.DupRate < 0 || p.DupRate > 1 || p.StaleRate < 0 || p.StaleRate > 1 {
			t.Errorf("%s: rates out of range", p.Name)
		}
	}
}

func TestSPECProfileByName(t *testing.T) {
	p, err := SPECProfileByName("403.gcc")
	if err != nil || p.Name != "403.gcc" {
		t.Fatalf("%v %v", p, err)
	}
	p, err = SPECProfileByName("gcc")
	if err != nil || p.Name != "403.gcc" {
		t.Fatalf("suffix lookup: %v %v", p, err)
	}
	if _, err := SPECProfileByName("nope"); err == nil {
		t.Fatal("bogus name accepted")
	}
}

func TestRunSPECUnderEveryDetector(t *testing.T) {
	prof := small(mustSpec(t, "403.gcc"))
	for _, mk := range []func() detectors.Detector{
		func() detectors.Detector { return detectors.None{} },
		func() detectors.Detector { return dangsan.New() },
		func() detectors.Detector { return dangnull.New() },
		func() detectors.Detector { return freesentry.New() },
	} {
		p := proc.New(mk())
		if err := RunSPEC(p, prof, 1); err != nil {
			t.Fatalf("%s: %v", p.Detector().Name(), err)
		}
		// All objects freed: no leaks.
		if st := p.Allocator().Stats(); st.LiveObjects != 0 {
			t.Fatalf("%s: %d live objects leaked", p.Detector().Name(), st.LiveObjects)
		}
	}
}

func mustSpec(t *testing.T, name string) SPECProfile {
	t.Helper()
	p, err := SPECProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSPECStatisticsShape(t *testing.T) {
	// The generator must reproduce the qualitative Table 1 shape: gcc has
	// high duplicates, milc has a high stale fraction and mostly hot
	// objects, dealII has almost no duplicates.
	runWith := func(name string) (d *dangsan.Detector) {
		d = dangsan.New()
		p := proc.New(d)
		if err := RunSPEC(p, small(mustSpec(t, name)), 42); err != nil {
			t.Fatal(err)
		}
		return d
	}

	gcc := runWith("gcc").Stats()
	if gcc.Registered == 0 {
		t.Fatal("gcc registered nothing")
	}
	dupFrac := float64(gcc.Duplicates) / float64(gcc.Registered)
	if dupFrac < 0.5 {
		t.Errorf("gcc duplicate fraction = %.2f, want high (Table 1: 0.94)", dupFrac)
	}

	milc := runWith("milc").Stats()
	if milc.HashTables == 0 {
		t.Error("milc created no hash tables (Table 1: ~94% of objects)")
	}
	staleFrac := float64(milc.Stale) / float64(milc.Registered)
	if staleFrac < 0.05 {
		t.Errorf("milc stale fraction = %.3f, want substantial (Table 1: 0.38)", staleFrac)
	}

	dealII := runWith("dealII").Stats()
	dealDup := float64(dealII.Duplicates) / float64(max(int(dealII.Registered), 1))
	if dealDup > 0.3 {
		t.Errorf("dealII duplicate fraction = %.2f, want low (Table 1: 0.036)", dealDup)
	}

	sjeng := runWith("sjeng").Stats()
	if sjeng.Registered > 100 {
		t.Errorf("sjeng registered %d pointers, want almost none", sjeng.Registered)
	}
}

func TestDangNullTracksFewerPointers(t *testing.T) {
	// Table 1's coverage gap: DangNULL only sees heap-resident pointer
	// slots, so it must register (and invalidate) far fewer pointers.
	prof := small(mustSpec(t, "perlbench"))

	ds := dangsan.New()
	if err := RunSPEC(proc.New(ds), prof, 7); err != nil {
		t.Fatal(err)
	}
	dn := dangnull.New()
	if err := RunSPEC(proc.New(dn), prof, 7); err != nil {
		t.Fatal(err)
	}
	dsStats := ds.Stats()
	dnReg, _ := dn.Stats()
	if dnReg >= dsStats.Registered {
		t.Fatalf("dangnull registered %d >= dangsan %d", dnReg, dsStats.Registered)
	}
}

func TestRunParallelThreadCounts(t *testing.T) {
	prof, err := ParallelProfileByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	prof.TotalObjects = 800
	prof.TotalStores = 8000
	prof.TotalCompute = 4000
	for _, threads := range []int{1, 2, 4, 8} {
		p := proc.New(dangsan.New())
		if err := RunParallel(p, prof, threads, 3); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if st := p.Allocator().Stats(); st.LiveObjects != 0 {
			t.Fatalf("threads=%d: %d objects leaked", threads, st.LiveObjects)
		}
	}
}

func TestWaterNsquaredLeaks(t *testing.T) {
	prof, err := ParallelProfileByName("water_nsquared")
	if err != nil {
		t.Fatal(err)
	}
	prof.TotalObjects = 2000
	prof.TotalStores = 4000
	prof.TotalCompute = 1000
	prof.LeakPerThread = 100

	footprint := func(threads int) uint64 {
		p := proc.New(detectors.None{})
		if err := RunParallel(p, prof, threads, 5); err != nil {
			t.Fatal(err)
		}
		if st := p.Allocator().Stats(); st.LiveObjects == 0 {
			t.Fatal("expected leaked objects")
		}
		return p.MemoryFootprint()
	}
	if f8, f1 := footprint(8), footprint(1); f8 <= f1 {
		t.Errorf("leaky benchmark footprint did not grow with threads: %d vs %d", f1, f8)
	}
}

func TestFreqmineCreatesHashTables(t *testing.T) {
	prof, err := ParallelProfileByName("freqmine")
	if err != nil {
		t.Fatal(err)
	}
	prof.TotalObjects = 500
	prof.TotalStores = 40000
	prof.TotalCompute = 1000
	d := dangsan.New()
	if err := RunParallel(proc.New(d), prof, 2, 9); err != nil {
		t.Fatal(err)
	}
	if d.Stats().HashTables == 0 {
		t.Fatal("freqmine profile created no hash tables")
	}
}

func TestParallelProfilesComplete(t *testing.T) {
	profs := ParallelProfiles()
	var parsec, splash int
	for _, p := range profs {
		switch {
		case strings.HasPrefix(p.Name, "parsec."):
			parsec++
		case strings.HasPrefix(p.Name, "splash2x."):
			splash++
		default:
			t.Errorf("profile %s in neither suite", p.Name)
		}
	}
	if parsec < 5 || splash < 5 {
		t.Fatalf("parsec=%d splash=%d, want several of each", parsec, splash)
	}
}

func TestRunServerAllProfiles(t *testing.T) {
	for _, prof := range ServerProfiles() {
		p := proc.New(dangsan.New())
		if err := RunServer(p, prof, 4, 200, 11); err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if st := p.Allocator().Stats(); st.LiveObjects != 0 {
			t.Fatalf("%s: %d objects leaked", prof.Name, st.LiveObjects)
		}
	}
}

// Regression: when every worker exits early on an error, the producer
// used to block forever on the full request queue. The error must
// propagate instead. Buffers larger than the 64 GiB heap make every
// worker's first Malloc fail, and far more requests than queue capacity
// plus workers guarantees the producer would fill the channel.
func TestRunServerWorkerErrorPropagates(t *testing.T) {
	prof := ServerProfile{
		Name:                "oom",
		AllocsPerRequest:    1,
		PtrStoresPerRequest: 1,
		ComputePerRequest:   1,
		BufferMin:           1 << 40,
		BufferMax:           1 << 40,
	}
	p := proc.New(dangsan.New())
	done := make(chan error, 1)
	go func() { done <- RunServer(p, prof, 4, 100000, 7) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("worker OOM error did not propagate")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunServer deadlocked after all workers errored")
	}
}

func TestServerProfileCharacter(t *testing.T) {
	// Cherokee must generate near-zero pointer registrations per request;
	// Apache must generate many — that difference is why the paper sees
	// 21% slowdown on Apache and none on Cherokee.
	run := func(name string) uint64 {
		d := dangsan.New()
		p := proc.New(d)
		prof, err := ServerProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := RunServer(p, prof, 2, 100, 1); err != nil {
			t.Fatal(err)
		}
		return d.Stats().Registered
	}
	apache, cherokee := run("apache"), run("cherokee")
	if apache < 10*cherokee {
		t.Fatalf("apache registered %d, cherokee %d: expected a wide gap", apache, cherokee)
	}
}

func TestExploitsPreventedOnlyUnderProtection(t *testing.T) {
	type scenario struct {
		name string
		run  func(*proc.Process) (ExploitOutcome, error)
	}
	scenarios := []scenario{
		{"CVE-2010-2939 openssl double free", DoubleFreeOpenSSL},
		{"CVE-2016-4077 wireshark UAF read", UAFWireshark},
		{"open litespeed UAF write", UAFLitespeed},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			// Unprotected: the exploit succeeds silently.
			out, err := sc.run(proc.New(detectors.None{}))
			if err != nil {
				t.Fatal(err)
			}
			if out.Prevented {
				t.Fatalf("baseline unexpectedly prevented: %s", out.Detail)
			}
			// DangSan: prevented.
			out, err = sc.run(proc.New(dangsan.New()))
			if err != nil {
				t.Fatal(err)
			}
			if !out.Prevented {
				t.Fatalf("dangsan failed to prevent: %s", out.Detail)
			}
		})
	}
}

func TestDoubleFreeAbortMessageShape(t *testing.T) {
	out, err := DoubleFreeOpenSSL(proc.New(dangsan.New()))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §8.1 shows "Attempt to free invalid pointer 0x80000...":
	// the invalidated pointer's top bit in the abort message.
	if !strings.Contains(out.Detail, "attempt to free invalid pointer 0x8") {
		t.Fatalf("abort message: %s", out.Detail)
	}
}
