package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"dangsan/internal/proc"
)

// ParallelProfile parameterizes one PARSEC or SPLASH-2X analog. Work totals
// are fixed per run and divided among threads (strong scaling, as in the
// paper's Figure 10).
type ParallelProfile struct {
	// Name is the benchmark this profile is calibrated to.
	Name string
	// TotalObjects is the number of objects allocated across all threads.
	TotalObjects int
	// TotalStores is the number of pointer stores across all threads.
	TotalStores int
	// DupRate is the duplicate-location probability (see SPECProfile).
	DupRate float64
	// SharedFraction is the fraction of pointer stores that publish
	// pointers to shared objects into shared slots — the operations where
	// threads contend on the same object's metadata.
	SharedFraction float64
	// SharedObjects is the number of objects visible to every thread.
	SharedObjects int
	// TotalCompute is the number of non-pointer memory operations.
	TotalCompute int
	// LeakPerThread allocates this many objects per thread that are never
	// freed — water_nsquared's behaviour, whose memory overhead therefore
	// grows with the thread count (paper §8.3).
	LeakPerThread int
	// HashHeavy drives most stores at few shared objects with distinct
	// locations, overflowing logs into hash tables — freqmine's behaviour
	// (471% memory overhead regardless of threads).
	HashHeavy bool
	// SizeMin and SizeMax bound allocation sizes.
	SizeMin, SizeMax uint64
	// LiveWindowPerThread is each thread's live-object window.
	LiveWindowPerThread int
}

// ParallelProfiles returns the PARSEC and SPLASH-2X analogs of Figures
// 10/12 (the subset of suites the paper could compile, with their headline
// behaviours).
func ParallelProfiles() []ParallelProfile {
	return []ParallelProfile{
		// PARSEC
		{Name: "parsec.blackscholes", TotalObjects: 64, TotalStores: 1000, DupRate: 0.5, SharedFraction: 0.1, SharedObjects: 4, TotalCompute: 3_000_000, SizeMin: 4096, SizeMax: 262144, LiveWindowPerThread: 8},
		{Name: "parsec.canneal", TotalObjects: 40000, TotalStores: 900_000, DupRate: 0.55, SharedFraction: 0.5, SharedObjects: 256, TotalCompute: 1_500_000, SizeMin: 32, SizeMax: 512, LiveWindowPerThread: 2000},
		{Name: "parsec.dedup", TotalObjects: 30000, TotalStores: 500_000, DupRate: 0.8, SharedFraction: 0.2, SharedObjects: 64, TotalCompute: 1_600_000, SizeMin: 256, SizeMax: 65536, LiveWindowPerThread: 200},
		{Name: "parsec.ferret", TotalObjects: 15000, TotalStores: 400_000, DupRate: 0.75, SharedFraction: 0.25, SharedObjects: 64, TotalCompute: 1_800_000, SizeMin: 64, SizeMax: 8192, LiveWindowPerThread: 300},
		{Name: "parsec.freqmine", TotalObjects: 8000, TotalStores: 900_000, DupRate: 0.3, SharedFraction: 0.6, SharedObjects: 32, TotalCompute: 1_200_000, HashHeavy: true, SizeMin: 32, SizeMax: 1024, LiveWindowPerThread: 2000},
		{Name: "parsec.swaptions", TotalObjects: 2000, TotalStores: 20_000, DupRate: 0.6, SharedFraction: 0.02, SharedObjects: 4, TotalCompute: 2_500_000, SizeMin: 128, SizeMax: 8192, LiveWindowPerThread: 32},
		{Name: "parsec.vips", TotalObjects: 6000, TotalStores: 120_000, DupRate: 0.7, SharedFraction: 0.1, SharedObjects: 16, TotalCompute: 2_000_000, SizeMin: 1024, SizeMax: 131072, LiveWindowPerThread: 64},
		// SPLASH-2X
		{Name: "splash2x.barnes", TotalObjects: 50000, TotalStores: 1_000_000, DupRate: 0.5, SharedFraction: 0.45, SharedObjects: 512, TotalCompute: 1_800_000, SizeMin: 64, SizeMax: 512, LiveWindowPerThread: 4000},
		{Name: "splash2x.fmm", TotalObjects: 12000, TotalStores: 300_000, DupRate: 0.7, SharedFraction: 0.3, SharedObjects: 128, TotalCompute: 1_200_000, SizeMin: 64, SizeMax: 4096, LiveWindowPerThread: 800},
		{Name: "splash2x.ocean_cp", TotalObjects: 256, TotalStores: 4000, DupRate: 0.5, SharedFraction: 0.2, SharedObjects: 16, TotalCompute: 2_800_000, SizeMin: 65536, SizeMax: 1048576, LiveWindowPerThread: 16},
		{Name: "splash2x.radiosity", TotalObjects: 60000, TotalStores: 800_000, DupRate: 0.6, SharedFraction: 0.4, SharedObjects: 512, TotalCompute: 1_700_000, SizeMin: 32, SizeMax: 1024, LiveWindowPerThread: 3000},
		{Name: "splash2x.raytrace", TotalObjects: 20000, TotalStores: 250_000, DupRate: 0.85, SharedFraction: 0.15, SharedObjects: 128, TotalCompute: 1_500_000, SizeMin: 64, SizeMax: 2048, LiveWindowPerThread: 500},
		{Name: "splash2x.water_nsquared", TotalObjects: 4000, TotalStores: 150_000, DupRate: 0.6, SharedFraction: 0.2, SharedObjects: 32, TotalCompute: 1_500_000, LeakPerThread: 400, SizeMin: 64, SizeMax: 1024, LiveWindowPerThread: 100},
		{Name: "splash2x.water_spatial", TotalObjects: 4000, TotalStores: 150_000, DupRate: 0.6, SharedFraction: 0.2, SharedObjects: 32, TotalCompute: 1_500_000, SizeMin: 512, SizeMax: 16384, LiveWindowPerThread: 100},
	}
}

// ParallelProfileByName resolves a profile by full or suffix name.
func ParallelProfileByName(name string) (ParallelProfile, error) {
	for _, p := range ParallelProfiles() {
		if p.Name == name || suffixAfterDot(p.Name) == name {
			return p, nil
		}
	}
	return ParallelProfile{}, fmt.Errorf("workloads: unknown parallel profile %q", name)
}

func suffixAfterDot(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return s[i+1:]
		}
	}
	return s
}

// RunParallel executes a parallel analog with the given number of threads.
// The total work is fixed; each thread performs 1/threads of it.
func RunParallel(p *proc.Process, prof ParallelProfile, threads int, seed int64) error {
	if threads < 1 {
		return fmt.Errorf("workloads: %d threads", threads)
	}
	main := p.NewThread()
	defer main.Exit()

	// Shared objects and the shared slot arena.
	shared := make([]uint64, prof.SharedObjects)
	sharedSizes := make([]uint64, prof.SharedObjects)
	for i := range shared {
		size := prof.SizeMin * 4
		base, err := main.Malloc(size)
		if err != nil {
			return fmt.Errorf("%s: %w", prof.Name, err)
		}
		shared[i] = base
		usable, _ := p.UsableSize(base)
		sharedSizes[i] = usable
	}
	sharedSlotsPer := 256
	sharedSlotBase := p.AllocGlobal(uint64(8 * sharedSlotsPer * threads))

	objsPer := prof.TotalObjects / threads
	storesPer := prof.TotalStores / threads
	computePer := prof.TotalCompute / threads

	errs := make([]error, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			errs[t] = runParallelWorker(p, prof, t, threads, objsPer, storesPer, computePer,
				shared, sharedSizes, sharedSlotBase+uint64(t*sharedSlotsPer*8), sharedSlotsPer,
				seed+int64(t)*7919)
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, base := range shared {
		if err := main.Free(base); err != nil {
			return fmt.Errorf("%s: %w", prof.Name, err)
		}
	}
	return nil
}

func runParallelWorker(p *proc.Process, prof ParallelProfile, t, threads, objects, stores, compute int,
	shared, sharedSizes []uint64, slotBase uint64, slots int, seed int64) error {
	th := p.NewThread()
	defer th.Exit()
	rng := rand.New(rand.NewSource(seed))

	// Private location arena on this thread's stack plus a private heap
	// arena (so both stack and heap locations occur).
	privSlots := 1 << 10
	stackArena := th.Alloca(uint64(8 * privSlots))
	heapArena, err := th.Malloc(uint64(8 * privSlots))
	if err != nil {
		return fmt.Errorf("%s[t%d]: %w", prof.Name, t, err)
	}
	defer th.Free(heapArena)

	sizeFor := func() uint64 {
		if prof.SizeMax <= prof.SizeMin {
			return prof.SizeMin
		}
		lo, hi := float64(prof.SizeMin), float64(prof.SizeMax)
		return uint64(lo * math.Pow(hi/lo, rng.Float64()))
	}

	type liveObj struct{ base, size uint64 }
	var live []liveObj
	privIdx := 0
	sharedIdx := 0
	lastLoc := uint64(0)

	// Per-thread leaked state, allocated up front and never freed
	// (water_nsquared keeps per-thread state for the whole run). The total
	// leak grows with the thread count, and each leaked object is
	// pointer-dense: its log entries can never be reclaimed, so the
	// detector's memory grows faster than the baseline's — the paper's
	// §8.3 observation (117.8% overhead at 1 thread, 609.2% at 64).
	for l := 0; l < prof.LeakPerThread; l++ {
		base, err := th.Malloc(prof.SizeMin)
		if err != nil {
			return fmt.Errorf("%s[t%d]: %w", prof.Name, t, err)
		}
		for s := 0; s < 24; s++ {
			loc := stackArena + uint64(privIdx%privSlots)*8
			privIdx++
			if f := th.StorePtr(loc, base+uint64(s%int(prof.SizeMin/8))*8); f != nil {
				return fmt.Errorf("%s[t%d]: %v", prof.Name, t, f)
			}
		}
	}

	storesPerObj := 1
	if objects > 0 {
		storesPerObj = max(stores/max(objects, 1), 1)
	}
	computePerObj := compute / max(objects, 1)
	computeSlot := th.Alloca(8 * 64)

	for i := 0; i < objects; i++ {
		base, err := th.Malloc(sizeFor())
		if err != nil {
			return fmt.Errorf("%s[t%d]: %w", prof.Name, t, err)
		}
		usable, _ := p.UsableSize(base)
		obj := liveObj{base, usable}

		for s := 0; s < storesPerObj; s++ {
			var loc, val uint64
			switch {
			case rng.Float64() < prof.SharedFraction:
				// Publish a pointer to a shared object. Hash-heavy profiles
				// cycle distinct slots so shared logs overflow.
				si := rng.Intn(len(shared))
				val = shared[si] + uint64(rng.Int63n(int64(sharedSizes[si])))&^7
				loc = slotBase + uint64(sharedIdx%slots)*8
				sharedIdx++
				if prof.HashHeavy {
					sharedIdx += 3 // stride through slots, defeating the lookback
				}
			case lastLoc != 0 && rng.Float64() < prof.DupRate:
				loc = lastLoc
				val = obj.base
			default:
				if privIdx&1 == 0 {
					loc = stackArena + uint64(privIdx%privSlots)*8
				} else {
					loc = heapArena + uint64(privIdx%privSlots)*8
				}
				privIdx++
				val = obj.base + uint64(rng.Int63n(int64(obj.size)))&^7
			}
			lastLoc = loc
			if f := th.StorePtr(loc, val); f != nil {
				return fmt.Errorf("%s[t%d]: %v", prof.Name, t, f)
			}
		}

		for c := 0; c < computePerObj; c++ {
			slot := computeSlot + uint64(c&63)*8
			v, f := th.Load(slot)
			if f != nil {
				return fmt.Errorf("%s[t%d]: %v", prof.Name, t, f)
			}
			if f := th.StoreInt(slot, v^uint64(c)); f != nil {
				return fmt.Errorf("%s[t%d]: %v", prof.Name, t, f)
			}
		}

		live = append(live, obj)
		if len(live) > prof.LiveWindowPerThread {
			victim := live[0]
			live = live[1:]
			if err := th.Free(victim.base); err != nil {
				return fmt.Errorf("%s[t%d]: %w", prof.Name, t, err)
			}
		}
	}
	for _, obj := range live {
		if err := th.Free(obj.base); err != nil {
			return fmt.Errorf("%s[t%d]: %w", prof.Name, t, err)
		}
	}
	return nil
}
