package workloads

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dangsan/internal/proc"
	"dangsan/internal/tcmalloc"
)

// ServerProfile parameterizes a web-server analog for the paper's §8.2:
// worker threads consume requests from a shared queue; each request
// allocates connection state and buffers, links them with pointer stores,
// does protocol work, and tears everything down.
type ServerProfile struct {
	// Name identifies the server.
	Name string
	// AllocsPerRequest is the number of heap objects per request.
	AllocsPerRequest int
	// PtrStoresPerRequest is the pointer-store count per request (linking
	// buffers into the connection structure and request pipeline).
	PtrStoresPerRequest int
	// ComputePerRequest is the non-pointer work per request (parsing,
	// header formatting).
	ComputePerRequest int
	// BufferMin/BufferMax bound buffer sizes.
	BufferMin, BufferMax uint64
	// Pooled reuses request buffers instead of freeing them (Nginx-style
	// pools): fewer frees, so invalidation happens in bursts at pool
	// recycling.
	Pooled bool
	// Scatter spreads pointer stores across a large pipeline arena instead
	// of recycling the same connection fields — Nginx's event pipeline
	// keeps buffer pointers in many distinct structures, which defeats the
	// lookback and makes it the most store-expensive server in the paper.
	Scatter bool
}

// ServerProfiles returns the three server analogs: Apache's worker model
// allocates and links aggressively per request (21% slowdown in the paper),
// Nginx allocates from pools but still propagates many pointers (30%), and
// Cherokee's request path hardly touches pointers at all (≈0%).
func ServerProfiles() []ServerProfile {
	return []ServerProfile{
		{Name: "apache", AllocsPerRequest: 12, PtrStoresPerRequest: 40, ComputePerRequest: 900, BufferMin: 256, BufferMax: 8192},
		{Name: "nginx", AllocsPerRequest: 5, PtrStoresPerRequest: 96, ComputePerRequest: 200, BufferMin: 512, BufferMax: 16384, Pooled: true, Scatter: true},
		{Name: "cherokee", AllocsPerRequest: 2, PtrStoresPerRequest: 2, ComputePerRequest: 600, BufferMin: 256, BufferMax: 4096},
	}
}

// ServerProfileByName resolves a server profile.
func ServerProfileByName(name string) (ServerProfile, error) {
	for _, p := range ServerProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return ServerProfile{}, fmt.Errorf("workloads: unknown server profile %q", name)
}

// RunServer serves the given number of requests with the given worker
// count, returning the first error. The benchmark harness times this call
// to derive requests/second.
func RunServer(p *proc.Process, prof ServerProfile, workers, requests int, seed int64) error {
	queue := make(chan int, 128) // the paper's 128 concurrent connections
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// A panicking worker must not take the process (or the
			// producer) with it: convert the panic into this worker's
			// error and let the normal drain logic wind the run down.
			defer func() {
				if r := recover(); r != nil {
					errs[w] = fmt.Errorf("server %s: worker %d panic: %v", prof.Name, w, r)
				}
			}()
			errs[w] = serverWorker(p, prof, queue, seed+int64(w)*104729)
		}(w)
	}
	// A worker that hits an error stops draining the queue; once all of
	// them are gone the producer would block forever on a full channel, so
	// it also watches for the pool emptying and stops enqueueing then.
	workersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(workersDone)
	}()
produce:
	for r := 0; r < requests; r++ {
		select {
		case queue <- r:
		case <-workersDone:
			break produce
		}
	}
	close(queue)
	<-workersDone
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// mallocRetries bounds the per-allocation retry loop under transient
// memory pressure; backoff grows linearly with the attempt number.
const mallocRetries = 4

// mallocRetryDeadline caps the TOTAL wall-time one allocation may spend
// retrying. The attempt count alone is not a time bound: ReclaimMemory
// walks the quarantine and every idle span, so under persistent OOM the
// loop's cost is dominated by work the counter does not see. Past the
// deadline the worker gives up with the typed OutOfMemoryError instead of
// grinding through the remaining attempts.
const mallocRetryDeadline = 5 * time.Millisecond

// mallocRobust is Malloc with bounded retry: on OutOfMemoryError it
// reclaims memory (draining any deferred-free quarantine, then returning
// idle pages to the OS), backs off briefly, and tries again — a server
// sheds load under transient pressure instead of dying. The loop is
// bounded on both axes: attempt count AND total wall-time. Non-OOM errors
// and persistent exhaustion are returned.
func mallocRobust(th *proc.Thread, size uint64) (uint64, error) {
	var err error
	deadline := time.Now().Add(mallocRetryDeadline)
	for attempt := 0; attempt < mallocRetries; attempt++ {
		var b uint64
		if b, err = th.Malloc(size); err == nil {
			return b, nil
		}
		var oom *tcmalloc.OutOfMemoryError
		if !errors.As(err, &oom) {
			return 0, err
		}
		backoff := time.Duration(attempt+1) * 50 * time.Microsecond
		// Give up on wall-time before paying for another reclaim+sleep
		// round that cannot finish inside the deadline.
		if time.Now().Add(backoff).After(deadline) {
			return 0, err
		}
		th.Process().ReclaimMemory()
		time.Sleep(backoff)
	}
	return 0, err
}

func serverWorker(p *proc.Process, prof ServerProfile, queue <-chan int, seed int64) error {
	th := p.NewThread()
	defer th.Exit()
	rng := rand.New(rand.NewSource(seed))

	// Per-worker connection structure: a heap object whose fields hold
	// pointers to the request's buffers.
	connSlots := 64
	conn, err := mallocRobust(th, uint64(8*connSlots))
	if err != nil {
		return fmt.Errorf("server %s: %w", prof.Name, err)
	}
	defer th.Free(conn)

	// Pool for Pooled profiles.
	var pool []uint64
	defer func() {
		for _, b := range pool {
			th.Free(b)
		}
	}()

	scratch := th.Alloca(8 * 64)

	// Scatter profiles spread stores over a large pipeline arena with a
	// stride that crosses 256-byte blocks, defeating both the lookback and
	// pointer compression.
	const scatterSlots = 4096
	const scatterStride = 264
	var scatterBase uint64
	scatterIdx := 0
	if prof.Scatter {
		scatterBase = th.Alloca(scatterSlots * scatterStride)
	}

	bufs := make([]uint64, 0, prof.AllocsPerRequest)
	// failRequest releases the current request's buffers before bailing
	// out. Without this, a mid-request allocation failure leaked every
	// buffer already allocated for the request (only conn and the pool are
	// covered by defers) — and under memory pressure that is exactly the
	// path that runs.
	failRequest := func(err error) error {
		for _, b := range bufs {
			th.Free(b)
		}
		return err
	}
	for range queue {
		// Allocate (or reuse) the request's buffers.
		bufs = bufs[:0]
		for i := 0; i < prof.AllocsPerRequest; i++ {
			if prof.Pooled && len(pool) > 0 {
				bufs = append(bufs, pool[len(pool)-1])
				pool = pool[:len(pool)-1]
				continue
			}
			size := prof.BufferMin + uint64(rng.Int63n(int64(prof.BufferMax-prof.BufferMin+1)))
			b, err := mallocRobust(th, size)
			if err != nil {
				return failRequest(fmt.Errorf("server %s: %w", prof.Name, err))
			}
			bufs = append(bufs, b)
		}
		// Link buffers into the connection state and pipeline slots.
		for s := 0; s < prof.PtrStoresPerRequest; s++ {
			loc := conn + uint64(s%connSlots)*8
			if prof.Scatter {
				loc = scatterBase + uint64(scatterIdx%scatterSlots)*scatterStride
				scatterIdx++
			}
			val := bufs[s%len(bufs)] + uint64(s%4)*8
			if f := th.StorePtr(loc, val); f != nil {
				return failRequest(fmt.Errorf("server %s: %w", prof.Name, f))
			}
		}
		// Protocol work.
		for c := 0; c < prof.ComputePerRequest; c++ {
			slot := scratch + uint64(c&63)*8
			v, f := th.Load(slot)
			if f != nil {
				return failRequest(fmt.Errorf("server %s: %w", prof.Name, f))
			}
			if f := th.StoreInt(slot, v+1); f != nil {
				return failRequest(fmt.Errorf("server %s: %w", prof.Name, f))
			}
		}
		// Tear down: free or pool the buffers.
		for _, b := range bufs {
			if prof.Pooled && len(pool) < 32 {
				pool = append(pool, b)
				continue
			}
			if err := th.Free(b); err != nil {
				return fmt.Errorf("server %s: %w", prof.Name, err)
			}
		}
	}
	return nil
}
