// Command dangsan-serve runs the supervised sharded detection service
// under a configurable client load, optionally disrupting shards (kills,
// hangs, slowdowns) while it runs, and reports the supervision outcome:
// per-shard breaker/heartbeat/failover status, the client population's
// verdict mix, and every invariant violation.
//
// Usage:
//
//	dangsan-serve [-shards 4] [-clients 8] [-requests 2000] [-seed 1]
//	              [-transport chan|unix|tcp] [-worker-bin path]
//	              [-kill-rate 0] [-hang-rate 0] [-slow-rate 0] [-sigkill-rate 0]
//	              [-heap-bytes N] [-audit] [-cold-spill-bytes N]
//	              [-quarantine-bytes N] [-metrics out.json]
//
// -transport selects where the workers live: "chan" (the default) keeps
// them as in-process goroutines; "unix" and "tcp" spawn one OS process
// per shard, reached over the wire codec (unix sockets or loopback TCP).
// Wire workers are spawned by re-execing this binary (or -worker-bin,
// e.g. a dangsan-worker build) and are supervised exactly like in-process
// ones: heartbeats, breakers, and failover with journal replay work
// unchanged across the process boundary.
//
// The disruption rates are per-tick probabilities (one tick every 20ms of
// the run): -kill-rate 0.5 kills a random shard's worker roughly every
// other tick; -sigkill-rate delivers real SIGKILLs to wire worker
// processes (the immediate in-process stop for chan). The supervisor
// restarts dead workers and rebuilds their state from the journal and any
// cold spill segments; clients ride through on retries or fail-open
// degraded verdicts. The run exits nonzero if any invariant broke: a
// false UAF verdict on a live key, an untyped client error, or (with
// -audit) accounting drift on any worker, including rebuilt ones.
//
// -metrics writes a final obs snapshot to the given file ("-" for
// stdout); feed it to `dangsan-stats service` for the supervision view or
// `dangsan-stats metrics` for everything.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dangsan/internal/obs"
	"dangsan/internal/service"
)

func main() {
	// A spawned copy of this binary must become a shard worker, not a
	// second coordinator.
	service.RunWorkerIfSpawned()
	shards := flag.Int("shards", 4, "worker shard count")
	clients := flag.Int("clients", 8, "concurrent load-generator clients")
	requests := flag.Int("requests", 2000, "operations per client")
	seed := flag.Int64("seed", 1, "load and disruption seed")
	transport := flag.String("transport", service.TransportChan, "worker transport: chan (in-process), unix, or tcp (worker processes)")
	workerBin := flag.String("worker-bin", "", "binary to spawn as wire workers (default: re-exec this binary)")
	killRate := flag.Float64("kill-rate", 0, "per-tick probability of killing a random shard's worker")
	hangRate := flag.Float64("hang-rate", 0, "per-tick probability of hanging a random shard's worker")
	slowRate := flag.Float64("slow-rate", 0, "per-tick probability of slowing a random shard's worker")
	sigkillRate := flag.Float64("sigkill-rate", 0, "per-tick probability of SIGKILLing a random shard's worker process")
	heapBytes := flag.Uint64("heap-bytes", 0, "per-worker heap size (0: default)")
	audit := flag.Bool("audit", false, "enable log-byte accounting cross-checks on every worker")
	coldSpill := flag.Uint64("cold-spill-bytes", 0, "tiered-log spill threshold per worker (0: off)")
	quarBytes := flag.Uint64("quarantine-bytes", 0, "epoch-quarantine byte budget per worker (0: inline frees)")
	metricsFile := flag.String("metrics", "", "write a JSON metrics snapshot to this file at exit (\"-\" for stdout)")
	flag.Parse()

	reg := obs.NewRegistry()
	cfg := service.Config{
		Shards:          *shards,
		HeapBytes:       *heapBytes,
		Audit:           *audit,
		QuarantineBytes: *quarBytes,
		ColdSpillBytes:  *coldSpill,
		Seed:            uint64(*seed),
		Transport:       *transport,
		WorkerCommand:   *workerBin,
		Metrics:         reg,
	}
	if *coldSpill > 0 {
		dir, err := os.MkdirTemp("", "dangsan-serve")
		check(err)
		defer os.RemoveAll(dir)
		cfg.ColdDir = dir
	}
	svc, err := service.New(cfg)
	check(err)
	defer svc.Close()

	// Client load in the background; the disruptor runs against it.
	loadCh := make(chan service.LoadResult, 1)
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		loadCh <- service.RunLoad(svc, service.LoadConfig{
			Clients:  *clients,
			Requests: *requests,
			Seed:     uint64(*seed),
		})
	}()

	disrupted := map[string]int{}
	if *killRate > 0 || *hangRate > 0 || *slowRate > 0 || *sigkillRate > 0 {
		rng := rng{state: uint64(*seed)*0x9e3779b97f4a7c15 + 1}
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
	disrupt:
		for {
			select {
			case <-loadDone:
				break disrupt
			case <-tick.C:
				for _, d := range []struct {
					kind string
					rate float64
				}{{"kill", *killRate}, {"hang", *hangRate}, {"slow", *slowRate}, {"sigkill", *sigkillRate}} {
					if d.rate <= 0 || rng.float() >= d.rate {
						continue
					}
					shard := int(rng.next() % uint64(*shards))
					if err := svc.Disrupt(shard, d.kind); err == nil {
						disrupted[d.kind]++
					}
				}
			}
		}
	}
	load := <-loadCh

	// The last disruptions may still be mid-failover: give every shard's
	// supervisor a bounded window to finish rebuilding before the final
	// accounting. A shard still down past the window is itself a
	// violation, reported by the stats loop below.
	settleDeadline := time.Now().Add(15 * time.Second)
	for {
		healthy := true
		for i := 0; i < svc.Shards(); i++ {
			if _, _, _, err := svc.DetectorStats(i); err != nil {
				healthy = false
				break
			}
		}
		if healthy || time.Now().After(settleDeadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Settle: drain every quarantine, then collect the full verdict.
	violations := append(load.Violations(), svc.Violations()...)
	if err := svc.Quiesce(); err != nil {
		violations = append(violations, fmt.Sprintf("quiesce: %v", err))
	}
	if *audit {
		for i := 0; i < svc.Shards(); i++ {
			_, _, av, err := svc.DetectorStats(i)
			if err != nil {
				violations = append(violations, fmt.Sprintf("shard %d stats: %v", i, err))
				continue
			}
			for _, v := range av {
				violations = append(violations, fmt.Sprintf("shard %d audit: %s", i, v))
			}
		}
	}

	c := svc.Counters()
	fmt.Printf("load: %d issued, %d confirmed, %d degraded, %d UAF detected, %d missed, %d unknown in %.2fs\n",
		load.Issued, load.Confirmed, load.Degraded, load.Detected, load.MissedUAF, load.Unknown,
		load.Elapsed.Seconds())
	if len(disrupted) > 0 {
		fmt.Printf("disruptions: %d kills, %d hangs, %d slows, %d sigkills\n",
			disrupted["kill"], disrupted["hang"], disrupted["slow"], disrupted["sigkill"])
	}
	fmt.Printf("service: %d requests, %d retries, %d timeouts, %d failovers (%d objects replayed, %d spilled locs recovered), %d heartbeat misses, %d breaker trips\n",
		c.Requests, c.Retries, c.Timeouts, c.Failovers, c.ReplayedObjects, c.RecoveredLocs,
		c.HeartbeatMisses, c.BreakerTrips)
	fmt.Printf("%-6s %-9s %-6s %-10s %-10s %-7s %-6s %-6s\n",
		"shard", "breaker", "trips", "failovers", "hb age", "incarn", "live", "freed")
	for _, st := range svc.ShardStats() {
		fmt.Printf("%-6d %-9s %-6d %-10d %-10s %-7d %-6d %-6d\n",
			st.Shard, st.Breaker, st.BreakerTrips, st.Failovers,
			st.HeartbeatAge.Round(time.Millisecond), st.Incarnation, st.LiveKeys, st.FreedKeys)
	}

	if *metricsFile != "" {
		data, err := reg.Snapshot().MarshalJSONIndent()
		check(err)
		if *metricsFile == "-" {
			fmt.Printf("%s\n", data)
		} else {
			check(os.WriteFile(*metricsFile, append(data, '\n'), 0o644))
		}
	}

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "dangsan-serve: violation: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("all invariants held")
}

// rng is a splitmix64 stream for the disruption draws.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dangsan-serve: %v\n", err)
		os.Exit(1)
	}
}
