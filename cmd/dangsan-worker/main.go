// Command dangsan-worker is the standalone shard-worker binary for the
// service's wire transports (unix socket / loopback TCP). It has no CLI of
// its own: a coordinator spawns it with DANGSAN_WORKER_SPEC set to a JSON
// worker spec, reads the READY handshake line for the bound address, and
// supervises it from the outside — heartbeats, SIGTERM for graceful stops,
// SIGKILL when chaos demands it.
//
// Any binary that embeds the service can serve the same role by calling
// service.RunWorkerIfSpawned at the top of main (the coordinator re-execs
// the current binary by default); this one exists so a deployment can
// point Config.WorkerCommand / -worker-bin at a minimal dedicated binary.
package main

import (
	"fmt"
	"os"

	"dangsan/internal/service"
)

func main() {
	service.RunWorkerIfSpawned()
	fmt.Fprintf(os.Stderr, "dangsan-worker: not spawned by a coordinator (%s unset)\n", service.WorkerSpecEnv)
	os.Exit(2)
}
