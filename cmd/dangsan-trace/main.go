// Command dangsan-trace records a workload's allocation/pointer-store
// event stream to a file, replays a recorded stream under any detector, or
// dumps a trace in text form. Recording once (under the cheap baseline) and
// replaying under each detector compares the systems on byte-identical
// workloads.
//
// Usage:
//
//	dangsan-trace record  [-scale 1.0] [-seed 1] -o trace.bin <spec benchmark>
//	dangsan-trace replay  [-detector dangsan] trace.bin
//	dangsan-trace dump    [-n 20] trace.bin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dangsan/internal/bench"
	"dangsan/internal/detectors"
	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/proc"
	"dangsan/internal/trace"
	"dangsan/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "record":
		record(args)
	case "replay":
		replay(args)
	case "dump":
		dump(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dangsan-trace record [-scale F] [-seed N] -o trace.bin <spec benchmark>
  dangsan-trace replay [-detector NAME] trace.bin
  dangsan-trace dump [-n N] trace.bin`)
	os.Exit(1)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	seed := fs.Int64("seed", 1, "workload random seed")
	out := fs.String("o", "", "output trace file (required)")
	fs.Parse(args)
	if *out == "" || fs.NArg() != 1 {
		usage()
	}
	prof, err := workloads.SPECProfileByName(fs.Arg(0))
	check(err)
	prof.Objects = scaleInt(prof.Objects, *scale)
	prof.TotalStores = scaleInt(prof.TotalStores, *scale)
	prof.ComputeOps = scaleInt(prof.ComputeOps, *scale)
	prof.LiveWindow = scaleInt(prof.LiveWindow, *scale)

	f, err := os.Create(*out)
	check(err)
	w := trace.NewWriter(f)
	p := proc.New(detectors.None{})
	p.SetTracer(w)
	check(workloads.RunSPEC(p, prof, *seed))
	check(w.Flush())
	check(f.Close())
	fmt.Fprintf(os.Stderr, "recorded %d events from %s to %s\n", w.Events(), prof.Name, *out)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	detName := fs.String("detector", "dangsan", "detector: dangsan, baseline, dangnull, freesentry, xtag, camp")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	check(err)
	defer f.Close()

	det, err := bench.NewDetector(bench.Kind(*detName))
	check(err)
	start := time.Now()
	rp, err := trace.Replay(trace.NewReader(f), det)
	check(err)
	elapsed := time.Since(start)
	st := rp.Stats()
	fmt.Printf("replayed %d events in %.3fs under %s (%d addresses translated)\n",
		st.Events, elapsed.Seconds(), *detName, st.Translated)
	fmt.Printf("memory footprint: %.1f MiB\n", float64(rp.Process().MemoryFootprint())/(1<<20))
	if d, ok := det.(*dangsan.Detector); ok {
		s := d.Stats()
		fmt.Printf("dangsan stats: %d objects, %d ptrs, %d invalidated, %d stale, %d dup, %d hashtables\n",
			s.ObjectsTracked, s.Registered, s.Invalidated, s.Stale, s.Duplicates, s.HashTables)
	}
}

func dump(args []string) {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	n := fs.Int("n", 20, "events to print (0 = all)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	check(err)
	defer f.Close()
	r := trace.NewReader(f)
	for i := 0; *n == 0 || i < *n; i++ {
		e, err := r.Next()
		if err == io.EOF {
			return
		}
		check(err)
		fmt.Println(e)
	}
}

func scaleInt(v int, s float64) int {
	n := int(float64(v) * s)
	if n < 8 {
		n = 8
	}
	return n
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dangsan-trace: %v\n", err)
		os.Exit(1)
	}
}
