// Command dangsan-run compiles (instruments) and executes a textual IR
// program on the simulated process runtime — the equivalent of building a C
// program with the DangSan compiler flags and running it.
//
// Usage:
//
//	dangsan-run [-detector dangsan|baseline|dangnull|freesentry|xtag|camp]
//	            [-no-instrument] [-no-opt] [-dump]
//	            [-faultrate 0] [-faultseed 1] [-faultbudget -1]
//	            [-max-metadata-bytes 0] [-heap-bytes 0] program.ir
//
// The process's exit status reflects the program's fate: 0 on clean exit,
// 2 on a trap (e.g. a use-after-free caught by DangSan).
//
// -faultrate arms the deterministic fault-injection plane on both the
// allocator and the detector's metadata paths; metadata failures put
// objects into degraded (untracked) mode rather than aborting the run.
// -max-metadata-bytes caps the detector's metadata footprint the same way.
package main

import (
	"flag"
	"fmt"
	"os"

	"dangsan/internal/bench"
	"dangsan/internal/faultinject"
	"dangsan/internal/instrument"
	"dangsan/internal/interp"
	"dangsan/internal/ir/opt"
	"dangsan/internal/irparse"
	"dangsan/internal/proc"
)

func main() {
	detector := flag.String("detector", "dangsan", "detector: dangsan, baseline, dangnull, freesentry, xtag, camp")
	noInstrument := flag.Bool("no-instrument", false, "skip the pointer-tracker pass")
	noOpt := flag.Bool("no-opt", false, "run the pass without the static optimizations")
	optimize := flag.Bool("O", false, "run the optimizer (constant folding, DCE, CFG simplification) before instrumenting")
	dump := flag.Bool("dump", false, "print the (instrumented) IR before running")
	entry := flag.String("entry", "main", "entry function")
	faultRate := flag.Float64("faultrate", 0, "arm every fault-injection site at this probability (0 = off)")
	faultSeed := flag.Int64("faultseed", 1, "fault-plane seed")
	faultBudget := flag.Int64("faultbudget", -1, "max injections per site (negative = unlimited)")
	maxMetadataBytes := flag.Uint64("max-metadata-bytes", 0, "cap the detector's metadata footprint; objects past the cap go untracked (0 = unlimited)")
	heapBytes := flag.Uint64("heap-bytes", 0, "shrink the simulated heap to this many bytes (0 = full layout)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dangsan-run [flags] program.ir")
		os.Exit(1)
	}
	src, err := os.ReadFile(flag.Arg(0))
	check(err)
	mod, err := irparse.Parse(string(src))
	check(err)

	if *optimize {
		ores, err := opt.Optimize(mod)
		check(err)
		fmt.Fprintf(os.Stderr, "optimized: %d folded, %d eliminated, %d blocks removed\n",
			ores.Folded, ores.Eliminated, ores.BlocksRemoved)
	}
	if !*noInstrument {
		opts := instrument.DefaultOptions()
		if *noOpt {
			opts = instrument.Options{}
		}
		res, err := instrument.Pass(mod, opts)
		check(err)
		fmt.Fprintf(os.Stderr, "instrumented: %d pointer stores, %d hooks inserted, %d hoisted, %d elided, %d/%d deref checks elided\n",
			res.PtrStores, res.Inserted, res.Hoisted, res.ElidedArithmetic,
			res.ElidedChecks, res.ElidedChecks+res.DerefChecks)
	}
	if *dump {
		fmt.Print(mod.String())
	}

	var plane *faultinject.Plane
	if *faultRate > 0 {
		plane = faultinject.New(*faultSeed)
		plane.EnableAll(*faultRate, *faultBudget)
	}
	// bench.Options wires the budget and plane into whichever backend
	// supports them (dangsan, xtag, camp).
	det, err := bench.Options{MaxMetadataBytes: *maxMetadataBytes}.
		NewDetector(bench.Kind(*detector), plane)
	check(err)
	rt := interp.New(mod, det, interp.Options{
		Entry:  *entry,
		Output: os.Stdout,
		Proc:   proc.Options{HeapBytes: *heapBytes, Faults: plane},
	})
	res, err := rt.Run()
	check(err)
	if res.Trap != nil {
		fmt.Fprintf(os.Stderr, "%v\n", res.Trap)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "exit value: %d\n", res.Ret)
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dangsan-run: %v\n", err)
		os.Exit(1)
	}
}
