// Command dangsan-bench regenerates the paper's evaluation: every figure
// and table of §8 plus the design ablations.
//
// Usage:
//
//	dangsan-bench -experiment all|fig9|fig10|fig11|fig12|table1|servers|exploits|ablation
//	              [-scale 1.0] [-seed 1] [-threads 1,2,4,8,16,32,64] [-v]
//	              [-metrics out.json] [-metrics-interval 1s] [-audit]
//	              [-cpuprofile prof.out] [-memprofile mem.out]
//
// Results go to stdout; progress (with -v) and periodic metric dumps (with
// -metrics-interval) to stderr. -metrics writes a final JSON snapshot of
// every instrument to the given file ("-" for stdout); feed it to
// `dangsan-stats metrics` for a human-readable rendering. -audit turns on
// DangSan's log-byte accounting cross-check; any drift fails the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"dangsan/internal/bench"
	"dangsan/internal/detectors"
	"dangsan/internal/obs"
	"dangsan/internal/proc"
	"dangsan/internal/workloads"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run: all, fig9, fig10, fig11, fig12, table1, servers, exploits, ablation")
	scale := flag.Float64("scale", 1.0, "workload scale factor (0.1 for a quick run)")
	seed := flag.Int64("seed", 1, "workload random seed")
	repeat := flag.Int("repeat", 1, "measurements per data point; the fastest is kept")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts for fig10/fig12 (default 1,2,4,8,16,32,64)")
	verbose := flag.Bool("v", false, "print progress to stderr")
	metricsFile := flag.String("metrics", "", "write a JSON metrics snapshot to this file at exit (\"-\" for stdout)")
	metricsInterval := flag.Duration("metrics-interval", 0, "also dump one-line JSON snapshots to stderr at this interval (requires -metrics)")
	audit := flag.Bool("audit", false, "enable DangSan's log-byte accounting cross-check (fails on drift)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			check(f.Close())
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			check(err)
			runtime.GC()
			check(pprof.WriteHeapProfile(f))
			check(f.Close())
		}()
	}

	var progress func(string)
	if *verbose {
		progress = func(s string) { fmt.Fprintf(os.Stderr, "... %s\n", s) }
	}
	opts := bench.Options{Scale: *scale, Seed: *seed, Repeat: *repeat, Audit: *audit}

	var reg *obs.Registry
	if *metricsFile != "" {
		reg = obs.NewRegistry()
		opts.Metrics = reg
		if *metricsInterval > 0 {
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				tick := time.NewTicker(*metricsInterval)
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
						line, err := json.Marshal(reg.Snapshot())
						if err == nil {
							fmt.Fprintf(os.Stderr, "metrics: %s\n", line)
						}
					}
				}
			}()
		}
		defer func() {
			data, err := reg.Snapshot().MarshalJSONIndent()
			check(err)
			if *metricsFile == "-" {
				fmt.Printf("%s\n", data)
				return
			}
			check(os.WriteFile(*metricsFile, append(data, '\n'), 0o644))
		}()
	} else if *metricsInterval > 0 {
		fatalf("-metrics-interval requires -metrics")
	}

	threads := bench.DefaultThreadCounts()
	if *threadsFlag != "" {
		threads = nil
		for _, tok := range strings.Split(*threadsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n < 1 {
				fatalf("bad -threads value %q", tok)
			}
			threads = append(threads, n)
		}
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }
	ran := false

	// fig9/fig11/table1 share the SPEC runs where possible.
	if want("fig9") || want("fig11") {
		ran = true
		rows, err := bench.RunSPEC(opts, progress)
		check(err)
		if want("fig9") {
			fmt.Println(bench.FormatFig9(rows))
		}
		if want("fig11") {
			fmt.Println(bench.FormatFig11(rows))
		}
	}
	if want("fig10") || want("fig12") {
		ran = true
		rows, err := bench.RunScalability(threads, opts, progress)
		check(err)
		if want("fig10") {
			fmt.Println(bench.FormatFig10(rows))
		}
		if want("fig12") {
			fmt.Println(bench.FormatFig12(rows))
		}
	}
	if want("table1") {
		ran = true
		rows, err := bench.RunTable1(opts, progress)
		check(err)
		fmt.Println(bench.FormatTable1(rows))
	}
	if want("servers") {
		ran = true
		rows, err := bench.RunServers(opts, progress)
		check(err)
		fmt.Println(bench.FormatServers(rows))
	}
	if want("exploits") {
		ran = true
		runExploits()
	}
	if want("ablation") {
		ran = true
		lb, err := bench.RunLookbackSweep(nil, opts, progress)
		check(err)
		fmt.Println(bench.FormatLookback(lb))
		cp, err := bench.RunCompressionAblation(opts, progress)
		check(err)
		fmt.Println(bench.FormatCompression(cp))
		mp, err := bench.RunMapperAblation(nil, opts, progress)
		check(err)
		fmt.Println(bench.FormatMapper(mp))
		sp, err := bench.RunShadowAblation(nil, progress)
		check(err)
		fmt.Println(bench.FormatShadow(sp))
	}
	if !ran {
		fatalf("unknown experiment %q", *experiment)
	}
}

// runExploits reproduces §8.1: each CVE scenario under the baseline (where
// the attack succeeds) and under DangSan (where it is stopped).
func runExploits() {
	type scenario struct {
		name string
		run  func(*proc.Process) (workloads.ExploitOutcome, error)
	}
	scenarios := []scenario{
		{"CVE-2010-2939 (OpenSSL double free)", workloads.DoubleFreeOpenSSL},
		{"CVE-2016-4077 (Wireshark UAF read)", workloads.UAFWireshark},
		{"Open LiteSpeed (UAF write)", workloads.UAFLitespeed},
	}
	fmt.Println("Effectiveness (§8.1): exploit scenarios under baseline vs DangSan")
	for _, sc := range scenarios {
		fmt.Printf("\n%s\n", sc.name)
		base, err := sc.run(proc.New(detectors.None{}))
		check(err)
		fmt.Printf("  baseline: prevented=%v  %s\n", base.Prevented, base.Detail)
		det, err := bench.NewDetector(bench.DangSan)
		check(err)
		ds, err := sc.run(proc.New(det))
		check(err)
		fmt.Printf("  dangsan:  prevented=%v  %s\n", ds.Prevented, ds.Detail)
	}

	// The §1/§9 secure-allocator bypass: quarantine vs heap spray vs DangSan.
	fmt.Printf("\nHeap spray vs quarantine (paper §1/§9)\n")
	const quarantineBytes = 1 << 20
	p := proc.New(detectors.None{})
	p.EnableQuarantine(quarantineBytes)
	out, err := workloads.HeapSpray(p, 4)
	check(err)
	fmt.Printf("  quarantine, naive attack:  prevented=%v  %s\n", out.Prevented, out.Detail)
	p = proc.New(detectors.None{})
	p.EnableQuarantine(quarantineBytes)
	out, err = workloads.HeapSpray(p, 2000)
	check(err)
	fmt.Printf("  quarantine, 2000-spray:    prevented=%v  %s\n", out.Prevented, out.Detail)
	det, err := bench.NewDetector(bench.DangSan)
	check(err)
	out, err = workloads.HeapSpray(proc.New(det), 2000)
	check(err)
	fmt.Printf("  dangsan, 2000-spray:       prevented=%v  %s\n", out.Prevented, out.Detail)
	fmt.Println()
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dangsan-bench: "+format+"\n", args...)
	os.Exit(1)
}
