// Command dangsan-bench regenerates the paper's evaluation: every figure
// and table of §8 plus the design ablations.
//
// Usage:
//
//	dangsan-bench -experiment all|fig9|fig10|fig11|fig12|table1|servers|freelat|tiered|fiveway|service|wire|exploits|ablation|chaos|fuzz
//	              [-scale 1.0] [-seed 1] [-threads 1,2,4,8,16,32,64] [-v]
//	              [-metrics out.json] [-metrics-interval 1s] [-audit]
//	              [-faultrate 0] [-faultseed 0] [-faultbudget 256]
//	              [-max-metadata-bytes 0] [-heap-bytes 0]
//	              [-quarantine-bytes 0] [-quarantine-epoch 0] [-quarantine-sync]
//	              [-bench-json BENCH.json] [-cpuprofile prof.out] [-memprofile mem.out]
//
// Results go to stdout; progress (with -v) and periodic metric dumps (with
// -metrics-interval) to stderr. -metrics writes a final JSON snapshot of
// every instrument to the given file ("-" for stdout); feed it to
// `dangsan-stats metrics` for a human-readable rendering. -audit turns on
// DangSan's log-byte accounting cross-check; any drift fails the run.
//
// Fault injection: -faultrate arms every injection site (vmem mapping,
// tcmalloc spans, pointer-log blocks, shadow pages, ...) at the given
// probability on every measured run; -faultseed/-faultbudget make the
// failure pattern deterministic and bounded. -max-metadata-bytes caps
// DangSan's metadata, putting objects past the cap into degraded
// (untracked) mode; -heap-bytes shrinks the simulated heap. The chaos
// experiment sweeps a rate × seed grid asserting the fail-open invariants
// (no false UAF, no hangs, exact accounting, exploits still detected at
// full coverage) and exits nonzero on any violation. The chaos grid is
// overridden by -faultrate/-faultseed when set.
//
// -quarantine-bytes arms DangSan's epoch-based free quarantine (deferred
// frees, batched invalidation); -quarantine-epoch sets the drain batch
// width and -quarantine-sync forces drains onto the freeing thread. The
// freelat experiment measures the free-path latency distribution inline vs
// quarantined on the apache server analog. -cold-spill-bytes arms the
// tiered pointer logs (hash-mode location sets spill to disk segments past
// the threshold); the tiered experiment sweeps that threshold on a
// hash-fallback workload, trading resident log bytes for free-path tail
// latency. The fiveway experiment runs the SPEC analogs under the full
// five-way detector matrix — baseline, the three pointer-invalidation
// backends, and the checked-dereference xtag and camp backends — and
// quantifies camp's static dereference-check elision on a sweep of
// generated programs. -bench-json writes every ran experiment's rows as one
// machine-readable JSON document; bare BENCH_<n>.json names anchor to the
// git root and refuse to overwrite an existing artifact.
//
// The fuzz experiment runs the differential-fuzzing oracle: -scale sizes
// the seed sweep (500 at 1.0), each seed's generated program runs through
// the full mode x detector x config matrix plus a mutated variant with a
// known dangling use; any divergence or missed detection exits nonzero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"dangsan/internal/bench"
	"dangsan/internal/chaos"
	"dangsan/internal/detectors"
	"dangsan/internal/obs"
	"dangsan/internal/proc"
	"dangsan/internal/service"
	"dangsan/internal/workloads"
)

func main() {
	// The wire experiments spawn worker processes by re-execing this
	// binary; a spawned copy must become a shard worker, not a bench run.
	service.RunWorkerIfSpawned()
	experiment := flag.String("experiment", "all", "which experiment to run: all, fig9, fig10, fig11, fig12, table1, servers, freelat, tiered, fiveway, service, wire, exploits, ablation, chaos, fuzz")
	scale := flag.Float64("scale", 1.0, "workload scale factor (0.1 for a quick run)")
	seed := flag.Int64("seed", 1, "workload random seed")
	repeat := flag.Int("repeat", 1, "measurements per data point; the fastest is kept")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts for fig10/fig12 (default 1,2,4,8,16,32,64)")
	verbose := flag.Bool("v", false, "print progress to stderr")
	metricsFile := flag.String("metrics", "", "write a JSON metrics snapshot to this file at exit (\"-\" for stdout)")
	metricsInterval := flag.Duration("metrics-interval", 0, "also dump one-line JSON snapshots to stderr at this interval (requires -metrics)")
	audit := flag.Bool("audit", false, "enable DangSan's log-byte accounting cross-check (fails on drift)")
	faultRate := flag.Float64("faultrate", 0, "arm every fault-injection site at this probability per measured run (0 = off)")
	faultSeed := flag.Int64("faultseed", 0, "fault-plane seed (0 = reuse -seed)")
	faultBudget := flag.Int64("faultbudget", 0, "max injections per site per run (0 = 256, negative = unlimited)")
	maxMetadataBytes := flag.Uint64("max-metadata-bytes", 0, "cap DangSan's metadata footprint; objects past the cap go untracked (0 = unlimited)")
	heapBytes := flag.Uint64("heap-bytes", 0, "shrink the simulated heap to this many bytes (0 = full layout)")
	quarantineBytes := flag.Uint64("quarantine-bytes", 0, "arm DangSan's epoch-based free quarantine with this byte budget (0 = inline frees)")
	quarantineEpoch := flag.Int("quarantine-epoch", 0, "deferred frees retired per epoch batch (0 = default when quarantine armed)")
	quarantineSync := flag.Bool("quarantine-sync", false, "drain quarantine epochs on the freeing thread instead of a background worker")
	coldSpillBytes := flag.Uint64("cold-spill-bytes", 0, "spill hash-mode location sets past this many resident bytes to the cold tier's disk segments (0 = tiering off)")
	benchJSONFile := flag.String("bench-json", "", "write the machine-readable results of every experiment run to this JSON file (\"-\" for stdout)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			check(f.Close())
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			check(err)
			runtime.GC()
			check(pprof.WriteHeapProfile(f))
			check(f.Close())
		}()
	}

	var progress func(string)
	if *verbose {
		progress = func(s string) { fmt.Fprintf(os.Stderr, "... %s\n", s) }
	}
	opts := bench.Options{
		Scale: *scale, Seed: *seed, Repeat: *repeat, Audit: *audit,
		FaultRate: *faultRate, FaultSeed: *faultSeed, FaultBudget: *faultBudget,
		MaxMetadataBytes: *maxMetadataBytes, HeapBytes: *heapBytes,
		QuarantineBytes: *quarantineBytes, QuarantineEpoch: *quarantineEpoch,
		QuarantineSync: *quarantineSync, ColdSpillBytes: *coldSpillBytes,
	}

	var benchJSON *bench.BenchJSON
	if *benchJSONFile != "" {
		// Committed BENCH_<n>.json artifacts anchor to the git root and
		// refuse to overwrite; fail now, not after the experiments ran.
		resolved, err := bench.ResolveBenchJSONPath(*benchJSONFile)
		check(err)
		benchJSON = bench.NewBenchJSON()
		defer func() {
			check(benchJSON.Write(resolved))
		}()
	}

	var reg *obs.Registry
	if *metricsFile != "" {
		reg = obs.NewRegistry()
		opts.Metrics = reg
		if *metricsInterval > 0 {
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				tick := time.NewTicker(*metricsInterval)
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
						line, err := json.Marshal(reg.Snapshot())
						if err == nil {
							fmt.Fprintf(os.Stderr, "metrics: %s\n", line)
						}
					}
				}
			}()
		}
		defer func() {
			data, err := reg.Snapshot().MarshalJSONIndent()
			check(err)
			if *metricsFile == "-" {
				fmt.Printf("%s\n", data)
				return
			}
			check(os.WriteFile(*metricsFile, append(data, '\n'), 0o644))
		}()
	} else if *metricsInterval > 0 {
		fatalf("-metrics-interval requires -metrics")
	}

	threads := bench.DefaultThreadCounts()
	if *threadsFlag != "" {
		threads = nil
		for _, tok := range strings.Split(*threadsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n < 1 {
				fatalf("bad -threads value %q", tok)
			}
			threads = append(threads, n)
		}
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }
	ran := false

	// fig9/fig11/table1 share the SPEC runs where possible.
	if want("fig9") || want("fig11") {
		ran = true
		rows, err := bench.RunSPEC(opts, progress)
		check(err)
		benchJSON.Add("spec", rows)
		if want("fig9") {
			fmt.Println(bench.FormatFig9(rows))
		}
		if want("fig11") {
			fmt.Println(bench.FormatFig11(rows))
		}
	}
	if want("fig10") || want("fig12") {
		ran = true
		rows, err := bench.RunScalability(threads, opts, progress)
		check(err)
		benchJSON.Add("scalability", rows)
		if want("fig10") {
			fmt.Println(bench.FormatFig10(rows))
		}
		if want("fig12") {
			fmt.Println(bench.FormatFig12(rows))
		}
	}
	if want("table1") {
		ran = true
		rows, err := bench.RunTable1(opts, progress)
		check(err)
		fmt.Println(bench.FormatTable1(rows))
	}
	if want("servers") {
		ran = true
		rows, err := bench.RunServers(opts, progress)
		check(err)
		benchJSON.Add("servers", rows)
		fmt.Println(bench.FormatServers(rows))
	}
	if want("freelat") {
		ran = true
		rows, err := bench.RunFreeLatency(opts, progress)
		check(err)
		benchJSON.Add("freelat", rows)
		fmt.Println(bench.FormatFreeLatency(rows))
	}
	if want("tiered") {
		ran = true
		rows, err := bench.RunTiered(opts, progress)
		check(err)
		benchJSON.Add("tiered", rows)
		fmt.Println(bench.FormatTiered(rows))
	}
	if want("fiveway") {
		ran = true
		rep, err := bench.RunFiveWay(opts, progress)
		check(err)
		benchJSON.Add("fiveway", rep)
		fmt.Println(bench.FormatFiveWay(rep))
	}
	if want("service") {
		ran = true
		rep, err := bench.RunService(opts, progress)
		check(err)
		benchJSON.Add("service", rep)
		fmt.Println(bench.FormatService(rep))
	}
	if want("wire") {
		ran = true
		rep, err := bench.RunWire(opts, progress)
		check(err)
		benchJSON.Add("wire", rep)
		fmt.Println(bench.FormatWire(rep))
	}
	if want("exploits") {
		ran = true
		runExploits()
	}
	if *experiment == "chaos" {
		ran = true
		runChaos(opts, benchJSON)
	}
	if *experiment == "fuzz" {
		ran = true
		runFuzz(opts, progress)
	}
	if want("ablation") {
		ran = true
		lb, err := bench.RunLookbackSweep(nil, opts, progress)
		check(err)
		fmt.Println(bench.FormatLookback(lb))
		cp, err := bench.RunCompressionAblation(opts, progress)
		check(err)
		fmt.Println(bench.FormatCompression(cp))
		mp, err := bench.RunMapperAblation(nil, opts, progress)
		check(err)
		fmt.Println(bench.FormatMapper(mp))
		sp, err := bench.RunShadowAblation(nil, progress)
		check(err)
		fmt.Println(bench.FormatShadow(sp))
	}
	if !ran {
		fatalf("unknown experiment %q", *experiment)
	}
}

// runChaos sweeps the fault-injection grid and fails the process on any
// broken fail-open invariant. -faultrate/-faultseed, when set, replace the
// default grid with a single cell axis; -scale scales the request count.
func runChaos(opts bench.Options, benchJSON *bench.BenchJSON) {
	rates := []float64{0.02, 0.1, 0.3}
	if opts.FaultRate > 0 {
		rates = []float64{opts.FaultRate}
	}
	seeds := []int64{1, 2, 3}
	if opts.FaultSeed != 0 {
		seeds = []int64{opts.FaultSeed}
	}
	cfg := chaos.Config{
		Requests:         maxi(int(300*opts.Scale), 50),
		HeapBytes:        opts.HeapBytes,
		MaxMetadataBytes: opts.MaxMetadataBytes,
		Budget:           opts.FaultBudget,
		QuarantineBytes:  opts.QuarantineBytes,
		QuarantineEpoch:  opts.QuarantineEpoch,
		ColdSpillBytes:   opts.ColdSpillBytes,
	}
	results := chaos.Sweep(cfg, rates, seeds)
	benchJSON.Add("chaos", results)
	fmt.Println("Chaos sweep: fail-open invariants under injected resource failure")
	fmt.Printf("%8s %6s %9s %10s %5s %9s %9s %8s %s\n",
		"rate", "seed", "req/s", "completed", "oom", "injected", "degraded", "dropped", "violations")
	for _, r := range results {
		rps := "-"
		if r.Seconds > 0 && r.Completed {
			rps = fmt.Sprintf("%.0f", float64(cfg.Requests)/r.Seconds)
		}
		fmt.Printf("%8g %6d %9s %10v %5v %9d %9d %8d %d\n",
			r.Rate, r.Seed, rps, r.Completed, r.OOMAborted, r.Injected, r.Degraded, r.Dropped,
			len(r.Violations))
	}
	if failures := chaos.Failed(results); len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "dangsan-bench: chaos violation: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("all invariants held")
}

// runFuzz sweeps generated programs through the differential matrix and
// fails the process on any divergence or missed mutation. -scale sizes the
// sweep (500 seeds at 1.0); -seed positions it.
func runFuzz(opts bench.Options, progress func(string)) {
	r, err := bench.RunFuzz(opts, progress)
	check(err)
	fmt.Println(bench.FormatFuzz(r))
	if !r.Clean() {
		fatalf("fuzz: %d divergences, %d/%d mutations detected",
			len(r.Report.Divergences), r.Report.MutationDetected, r.Report.MutationDetectors)
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runExploits reproduces §8.1: each CVE scenario under the baseline (where
// the attack succeeds) and under DangSan (where it is stopped).
func runExploits() {
	type scenario struct {
		name string
		run  func(*proc.Process) (workloads.ExploitOutcome, error)
	}
	scenarios := []scenario{
		{"CVE-2010-2939 (OpenSSL double free)", workloads.DoubleFreeOpenSSL},
		{"CVE-2016-4077 (Wireshark UAF read)", workloads.UAFWireshark},
		{"Open LiteSpeed (UAF write)", workloads.UAFLitespeed},
	}
	fmt.Println("Effectiveness (§8.1): exploit scenarios under baseline vs DangSan")
	for _, sc := range scenarios {
		fmt.Printf("\n%s\n", sc.name)
		base, err := sc.run(proc.New(detectors.None{}))
		check(err)
		fmt.Printf("  baseline: prevented=%v  %s\n", base.Prevented, base.Detail)
		det, err := bench.NewDetector(bench.DangSan)
		check(err)
		ds, err := sc.run(proc.New(det))
		check(err)
		fmt.Printf("  dangsan:  prevented=%v  %s\n", ds.Prevented, ds.Detail)
	}

	// The §1/§9 secure-allocator bypass: quarantine vs heap spray vs DangSan.
	fmt.Printf("\nHeap spray vs quarantine (paper §1/§9)\n")
	const quarantineBytes = 1 << 20
	p := proc.New(detectors.None{})
	p.EnableQuarantine(quarantineBytes)
	out, err := workloads.HeapSpray(p, 4)
	check(err)
	fmt.Printf("  quarantine, naive attack:  prevented=%v  %s\n", out.Prevented, out.Detail)
	p = proc.New(detectors.None{})
	p.EnableQuarantine(quarantineBytes)
	out, err = workloads.HeapSpray(p, 2000)
	check(err)
	fmt.Printf("  quarantine, 2000-spray:    prevented=%v  %s\n", out.Prevented, out.Detail)
	det, err := bench.NewDetector(bench.DangSan)
	check(err)
	out, err = workloads.HeapSpray(proc.New(det), 2000)
	check(err)
	fmt.Printf("  dangsan, 2000-spray:       prevented=%v  %s\n", out.Prevented, out.Detail)
	fmt.Println()
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dangsan-bench: "+format+"\n", args...)
	os.Exit(1)
}
