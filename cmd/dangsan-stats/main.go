// Command dangsan-stats runs one SPEC analog under DangSan and prints its
// Table 1-style statistics, optionally comparing DangNULL's coverage.
//
// Usage:
//
//	dangsan-stats [-scale 1.0] [-seed 1] [-compare] [-quarantine-bytes N]
//	              [-cold-spill-bytes N] <benchmark>
//	dangsan-stats metrics <snapshot.json|->
//	dangsan-stats service <snapshot.json|->
//
// where <benchmark> is a SPEC name like 403.gcc or gcc, or "all". The
// "metrics" form pretty-prints a JSON snapshot written by
// `dangsan-bench -metrics` ("-" reads stdin); the "service" form renders
// the supervision gauges of a `dangsan-serve -metrics` snapshot — request
// and degraded counters, failover and replay totals, and a per-shard
// table of heartbeat age, breaker state, and failovers.
// With -quarantine-bytes the
// run uses deferred (epoch-quarantine) frees and additionally reports the
// epoch depth and drain batch width. With -cold-spill-bytes the run uses
// tiered pointer logs and additionally reports the spill traffic and the
// cold tier's disk footprint.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dangsan/internal/detectors/dangnull"
	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/obs"
	"dangsan/internal/pointerlog"
	"dangsan/internal/proc"
	"dangsan/internal/workloads"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	seed := flag.Int64("seed", 1, "workload random seed")
	compare := flag.Bool("compare", false, "also run DangNULL for coverage comparison")
	quarBytes := flag.Uint64("quarantine-bytes", 0, "epoch-quarantine byte budget; 0 keeps inline frees")
	quarEpoch := flag.Int("quarantine-epoch", 0, "quarantine drain batch width (0: default)")
	coldSpill := flag.Uint64("cold-spill-bytes", 0, "tiered-log spill threshold; 0 keeps logs fully resident")
	flag.Parse()
	if flag.NArg() == 2 && flag.Arg(0) == "metrics" {
		printMetrics(flag.Arg(1))
		return
	}
	if flag.NArg() == 2 && flag.Arg(0) == "service" {
		printService(flag.Arg(1))
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dangsan-stats [flags] <benchmark|all> | dangsan-stats metrics|service <file|->")
		os.Exit(1)
	}

	var profs []workloads.SPECProfile
	if flag.Arg(0) == "all" {
		profs = workloads.SPECProfiles()
	} else {
		p, err := workloads.SPECProfileByName(flag.Arg(0))
		check(err)
		profs = []workloads.SPECProfile{p}
	}

	for _, prof := range profs {
		prof.Objects = scaleInt(prof.Objects, *scale)
		prof.TotalStores = scaleInt(prof.TotalStores, *scale)
		prof.ComputeOps = scaleInt(prof.ComputeOps, *scale)
		prof.LiveWindow = scaleInt(prof.LiveWindow, *scale)

		var reg *obs.Registry
		var d *dangsan.Detector
		if *quarBytes > 0 || *coldSpill > 0 {
			cfg := pointerlog.DefaultConfig()
			cfg.QuarantineBytes = *quarBytes
			cfg.QuarantineEpoch = *quarEpoch
			cfg.ColdSpillBytes = *coldSpill
			reg = obs.NewRegistry()
			d = dangsan.NewWithOptions(dangsan.Options{Config: cfg, Metrics: reg})
		} else {
			d = dangsan.New()
		}
		p := proc.New(d)
		check(workloads.RunSPEC(p, prof, *seed))
		p.Quiesce()
		s := d.Stats()
		cold := d.Logger().ColdLogStats()
		d.Close()
		fmt.Printf("%s\n", prof.Name)
		fmt.Printf("  objects tracked:  %d\n", s.ObjectsTracked)
		fmt.Printf("  hash tables:      %d\n", s.HashTables)
		fmt.Printf("  ptrs registered:  %d\n", s.Registered)
		fmt.Printf("  ptrs invalidated: %d\n", s.Invalidated)
		fmt.Printf("  stale entries:    %d\n", s.Stale)
		fmt.Printf("  duplicates:       %d\n", s.Duplicates)
		fmt.Printf("  compressed:       %d\n", s.Compressed)
		fmt.Printf("  log bytes:        %d\n", s.LogBytes)
		if *quarBytes > 0 && reg != nil {
			snap := reg.Snapshot()
			batch := snap.Histograms["dangsan.quarantine_batch_objects"]
			fmt.Printf("  quarantine epochs: %d\n", snap.Gauges["dangsan.quarantine_epochs"])
			fmt.Printf("  drain batch mean:  %.1f objects\n", batch.Mean())
			fmt.Printf("  overflow drains:   %d\n", snap.Counters["dangsan.quarantine_overflow_drains"])
		}
		if *coldSpill > 0 {
			fmt.Printf("  log bytes live:   %d\n", s.LogBytesLive)
			fmt.Printf("  spilled bytes:    %d (%d spills, %d failures)\n",
				s.LogBytesSpilled, s.Spills, s.SpillFailures)
			fmt.Printf("  cold segments:    %d (%d disk bytes, %d compactions)\n",
				cold.Segments, cold.DiskBytes, cold.Compactions)
			fmt.Printf("  cold read errors: %d\n", s.ColdReadErrors)
		}

		if *compare {
			dn := dangnull.New()
			check(workloads.RunSPEC(proc.New(dn), prof, *seed))
			reg, inv := dn.Stats()
			fmt.Printf("  dangnull ptrs:    %d\n", reg)
			fmt.Printf("  dangnull inval:   %d\n", inv)
		}
	}
}

// printMetrics renders a dangsan-bench -metrics snapshot for humans.
func printMetrics(path string) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	check(err)
	snap, err := obs.ParseSnapshot(data)
	check(err)
	fmt.Print(snap.Format())
}

// printService renders the supervision view of a dangsan-serve -metrics
// snapshot: the service.* gauges registered by the sharded service.
func printService(path string) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	check(err)
	snap, err := obs.ParseSnapshot(data)
	check(err)
	g := snap.Gauges
	if _, ok := g["service.requests"]; !ok {
		check(fmt.Errorf("%s has no service.* gauges (not a dangsan-serve snapshot?)", path))
	}
	fmt.Printf("service\n")
	fmt.Printf("  requests:        %d\n", g["service.requests"])
	fmt.Printf("  degraded:        %d\n", g["service.degraded_requests"])
	fmt.Printf("  retries:         %d\n", g["service.retries"])
	fmt.Printf("  timeouts:        %d\n", g["service.timeouts"])
	fmt.Printf("  failovers:       %d\n", g["service.failovers"])
	fmt.Printf("  replayed objs:   %d\n", g["service.replayed_objects"])
	fmt.Printf("  recovered locs:  %d\n", g["service.recovered_spilled_locs"])
	fmt.Printf("  heartbeat miss:  %d\n", g["service.heartbeat_misses"])
	fmt.Printf("  worker panics:   %d\n", g["service.worker_panics"])
	fmt.Printf("  breaker trips:   %d\n", g["service.breaker_trips"])
	fmt.Printf("  %-6s %-10s %-12s %-10s\n", "shard", "breaker", "hb age", "failovers")
	breakerNames := []string{"closed", "open", "half-open"}
	for i := 0; ; i++ {
		state, ok := g[fmt.Sprintf("service.shard%d.breaker_state", i)]
		if !ok {
			break
		}
		name := "?"
		if state >= 0 && int(state) < len(breakerNames) {
			name = breakerNames[state]
		}
		fmt.Printf("  %-6d %-10s %-12s %-10d\n", i, name,
			fmt.Sprintf("%dms", g[fmt.Sprintf("service.shard%d.heartbeat_age_ms", i)]),
			g[fmt.Sprintf("service.shard%d.failovers", i)])
	}
}

func scaleInt(v int, s float64) int {
	n := int(float64(v) * s)
	if n < 8 {
		n = 8
	}
	return n
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dangsan-stats: %v\n", err)
		os.Exit(1)
	}
}
