// Compiler: the DangSan instrumentation pipeline end to end.
//
// A small IR program — a linked-list workload with a use-after-free bug in
// its teardown — goes through the pointer-tracker pass (showing the hooks
// inserted, the loop-invariant registration hoisted out of the build loop,
// and the pointer-arithmetic registration elided), then runs first without
// protection (the bug is silent) and then under DangSan (the bug traps).
//
// Run with: go run ./examples/compiler
package main

import (
	"fmt"

	"dangsan/internal/detectors"
	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/instrument"
	"dangsan/internal/interp"
	"dangsan/internal/ir"
	"dangsan/internal/irparse"
)

// program builds a 16-node singly linked list head-first. Inside the
// free-less build loop, a sentinel pointer is re-stored into a fixed slot
// on every iteration — location and value are both loop-invariant, so the
// pass hoists that registration to the preheader. A cursor advanced with
// pointer arithmetic shows the elision. The teardown frees the head node
// while the cursor still points into it — a use-after-free.
const program = `
global head 8
global cursor 8
global tail 8

func main() i64 {
entry:
  r9 = global head
  store ptr [r9], 0
  r11 = malloc 16         ; sentinel node
  r12 = global tail
  r0 = mov 0
  br buildloop
buildloop:
  r1 = icmp lt r0, 16
  br r1, build, scan
build:
  r2 = malloc 16          ; node{next, value}
  r3 = load ptr [r9]
  store ptr [r2], r3      ; node.next = old head
  r4 = gep r2, 8
  store i64 [r4], r0      ; node.value = i
  store ptr [r9], r2      ; head = node
  store ptr [r12], r11    ; tail = sentinel (invariant: hoisted)
  r0 = add r0, 1
  br buildloop
scan:
  r5 = global cursor
  r6 = load ptr [r9]
  store ptr [r5], r6      ; cursor = head
  r6 = load ptr [r5]
  r6 = gep r6, 8          ; cursor = &cursor->value (arithmetic update)
  store ptr [r5], r6
  br bug
bug:
  r7 = load ptr [r9]      ; head node...
  free r7                 ; ...freed while cursor still points into it
  r8 = load ptr [r5]
  r10 = load i64 [r8]     ; use after free
  ret r10
}
`

func main() {
	// Compile twice: an uninstrumented build and a DangSan build.
	plain, err := irparse.Parse(program)
	must(err)
	protected, err := irparse.Parse(program)
	must(err)

	res, err := instrument.Pass(protected, instrument.DefaultOptions())
	must(err)
	fmt.Printf("pointer-tracker pass: %d pointer stores\n", res.PtrStores)
	fmt.Printf("  %d hooks inserted inline\n", res.Inserted)
	fmt.Printf("  %d registrations hoisted out of free-less loops\n", res.Hoisted)
	fmt.Printf("  %d registrations elided (pure pointer arithmetic)\n\n", res.ElidedArithmetic)

	fmt.Println("instrumented main (excerpt):")
	for _, b := range protected.Funcs["main"].Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpRegPtr {
				fmt.Printf("  %s: %s\n", b.Name, b.Instrs[i].String())
			}
		}
	}
	fmt.Println()

	r1, err := interp.New(plain, detectors.None{}, interp.Options{}).Run()
	must(err)
	fmt.Printf("unprotected run: trap=%v, silently read value %d from freed memory\n", r1.Trap, int64(r1.Ret))

	r2, err := interp.New(protected, dangsan.New(), interp.Options{}).Run()
	must(err)
	if r2.Trap == nil {
		panic("dangsan build did not trap")
	}
	fmt.Printf("dangsan run:     %v\n", r2.Trap)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
