// Defenses: the paper's §9 comparison of use-after-free defense classes as
// one runnable demonstration.
//
// The same attack — free a victim object, groom the heap, use the dangling
// pointer — runs against four configurations:
//
//  1. no defense: the attack reads attacker-controlled memory;
//  2. a secure allocator (ASan-style quarantine): stops the naive attack,
//     but heap spraying flushes the quarantine and the attack succeeds —
//     the paper's §1 argument for why secure allocators are insufficient;
//  3. conservative garbage collection (Boehm-style): the dangling pointer
//     keeps the object alive, so the attack is downgraded to a stale read
//     and a memory leak;
//  4. DangSan: the dangling pointer itself is dead — the attack faults no
//     matter how hard the attacker sprays.
//
// Run with: go run ./examples/defenses
package main

import (
	"fmt"

	"dangsan/internal/detectors"
	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/gc"
	"dangsan/internal/proc"
	"dangsan/internal/vmem"
	"dangsan/internal/workloads"
)

func main() {
	const quarantineBytes = 1 << 20
	const bigSpray = 2000
	const smallSpray = 4

	fmt.Println("1. no defense")
	p := proc.New(detectors.None{})
	report(workloads.HeapSpray(p, smallSpray))

	fmt.Printf("\n2. secure allocator (%d KiB quarantine)\n", quarantineBytes>>10)
	p = proc.New(detectors.None{})
	p.EnableQuarantine(quarantineBytes)
	fmt.Printf("   naive attack (%d allocations):\n", smallSpray)
	report(workloads.HeapSpray(p, smallSpray))
	p = proc.New(detectors.None{})
	p.EnableQuarantine(quarantineBytes)
	fmt.Printf("   heap spray (%d allocations):\n", bigSpray)
	report(workloads.HeapSpray(p, bigSpray))

	fmt.Println("\n3. conservative garbage collection")
	gcDemo()

	fmt.Println("\n4. dangsan")
	p = proc.New(dangsan.New())
	report(workloads.HeapSpray(p, bigSpray))
}

func report(out workloads.ExploitOutcome, err error) {
	if err != nil {
		panic(err)
	}
	verdict := "ATTACK SUCCEEDED"
	if out.Prevented {
		verdict = "prevented"
	}
	fmt.Printf("   %-16s %s\n", verdict+":", out.Detail)
}

func gcDemo() {
	p := proc.New(detectors.None{})
	c := gc.New(p)
	th := p.NewThread()
	c.AddRootThread(th)

	victim, err := c.Alloc(th, 4096)
	must(err)
	must(fault(th.StoreInt(victim, 0x736563726574)))
	ref := p.AllocGlobal(8)
	must(fault(th.StorePtr(ref, victim)))

	c.GCFree(victim) // the program "frees" the object
	if _, err := c.Collect(th); err != nil {
		panic(err)
	}
	v, f := th.Deref(ref)
	must(fault(f))
	fmt.Printf("   prevented:       dangling read returned the ORIGINAL data 0x%x "+
		"(object kept alive: %d object leaked)\n", v, c.Live())
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// fault converts a *vmem.Fault into an error without the typed-nil pitfall.
func fault(f *vmem.Fault) error {
	if f == nil {
		return nil
	}
	return f
}
