// Webserver: the paper's §8.2 server experiment as a runnable demo.
//
// A simulated multithreaded web server (32 workers draining a
// 128-connection queue, as in the paper's ApacheBench setup) serves the
// same request stream against the uninstrumented baseline and under
// DangSan, printing the throughput and memory comparison for the three
// server profiles — Apache-like (allocation-heavy), Nginx-like (pooled
// buffers) and Cherokee-like (almost no pointer traffic).
//
// Run with: go run ./examples/webserver [-requests 20000] [-workers 32]
package main

import (
	"flag"
	"fmt"
	"time"

	"dangsan/internal/detectors"
	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/proc"
	"dangsan/internal/workloads"
)

func main() {
	requests := flag.Int("requests", 20000, "requests to serve per configuration")
	workers := flag.Int("workers", 32, "worker threads")
	flag.Parse()

	fmt.Printf("serving %d requests with %d workers per configuration\n\n", *requests, *workers)
	fmt.Printf("%-10s %14s %14s %10s %12s\n", "server", "baseline req/s", "dangsan req/s", "slowdown", "mem ratio")

	for _, prof := range workloads.ServerProfiles() {
		baseRPS, baseMem := serve(detectors.None{}, prof, *workers, *requests)
		dsRPS, dsMem := serve(dangsan.New(), prof, *workers, *requests)
		fmt.Printf("%-10s %14.0f %14.0f %9.0f%% %11.1fx\n",
			prof.Name, baseRPS, dsRPS, (1-dsRPS/baseRPS)*100, float64(dsMem)/float64(baseMem))
	}
	fmt.Println("\npaper §8.2/§8.3: apache -21% (4.5x mem), nginx -30% (1.8x mem), cherokee ~0% (1.1x mem)")
}

func serve(det detectors.Detector, prof workloads.ServerProfile, workers, requests int) (rps float64, mem uint64) {
	p := proc.New(det)
	start := time.Now()
	if err := workloads.RunServer(p, prof, workers, requests, 1); err != nil {
		panic(err)
	}
	elapsed := time.Since(start).Seconds()
	return float64(requests) / elapsed, p.MemoryFootprint()
}
