// Quickstart: the smallest end-to-end tour of the DangSan library.
//
// It creates a simulated process protected by DangSan, allocates an object,
// spreads pointers to it through memory, frees it, and shows that every
// copy was invalidated — then demonstrates the two ways a use-after-free
// surfaces: a fault on dereference, and an allocator abort on double free.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/proc"
	"dangsan/internal/vmem"
)

func main() {
	det := dangsan.New()
	p := proc.New(det)
	th := p.NewThread()

	// Allocate a 64-byte object and store pointers to it in a global
	// variable, on the stack, and inside another heap object.
	obj, err := th.Malloc(64)
	must(err)
	fmt.Printf("allocated object at         0x%x\n", obj)

	globalSlot := p.AllocGlobal(8)
	stackSlot := th.Alloca(8)
	heapHolder, err := th.Malloc(8)
	must(err)

	must(fault(th.StorePtr(globalSlot, obj)))
	must(fault(th.StorePtr(stackSlot, obj+16))) // interior pointer
	must(fault(th.StorePtr(heapHolder, obj)))

	// Free the object: DangSan walks its pointer log and flips the top bit
	// of every location that still points into it.
	must(th.Free(obj))

	for _, s := range []struct {
		name string
		loc  uint64
	}{{"global", globalSlot}, {"stack", stackSlot}, {"heap", heapHolder}} {
		v, f := th.Load(s.loc)
		must(fault(f))
		fmt.Printf("pointer in %-6s is now     0x%x (invalid bit set: %v)\n",
			s.name, v, v>>63 == 1)
	}

	// Using the dangling pointer faults instead of reading reused memory.
	if _, f := th.Deref(globalSlot); f != nil {
		fmt.Printf("dereference trapped:        %v\n", f)
	}

	// Freeing through the dangling pointer aborts in the allocator.
	stale, _ := th.Load(heapHolder)
	if err := th.Free(stale); err != nil {
		fmt.Printf("double free aborted:        %v\n", err)
	}

	s := det.Stats()
	fmt.Printf("stats: %d objects, %d pointers registered, %d invalidated, %d stale\n",
		s.ObjectsTracked, s.Registered, s.Invalidated, s.Stale)
}

// fault converts a *vmem.Fault into an error without the typed-nil pitfall.
func fault(f *vmem.Fault) error {
	if f == nil {
		return nil
	}
	return f
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
